// The effective open-loop gain lambda(s) = sum_m A(s + j m w0) (eq. 37).
//
// This is the quantity the whole paper turns on: the m != 0 aliasing
// terms are what the classical LTI approximation (lambda ~ A) drops, and
// what degrades the phase margin once w_UG approaches w0.
//
// Three evaluation strategies:
//  * truncated:  symmetric partial sum |m| <= M  (what a truncated HTM
//                computes; used for the truncation-order ablation),
//  * adaptive:   symmetric pairs until the tail is negligible,
//  * exact:      closed form via partial fractions and
//                sum_m 1/(x + j m w0)^k  ->  derivatives of
//                (pi/w0) coth(pi x / w0); no truncation error at all.
//
// The exact form also proves the link to the z-domain baseline: by the
// Poisson summation formula, lambda(s) = T * sum_n a(nT) e^{-snT} is the
// impulse-invariant z-transform of A evaluated at z = e^{sT} (a(0+) = 0
// because A has relative degree >= 2), which ztrans/ exploits.
#pragma once

#include "htmpll/lti/partial_fractions.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {

struct AliasingSumOptions {
  int max_pairs = 100000;      ///< hard cap on symmetric pairs
  double rel_tol = 1e-13;      ///< pair contribution below this stops...
  int quiet_pairs = 4;         ///< ...after this many consecutive pairs
};

/// S_k(x) = sum_{m in Z} 1/(x + j m w0)^k for k = 1..4 (principal value
/// for k = 1), via the coth closed form.  Throws for k outside [1, 4].
cplx harmonic_pole_sum(cplx x, double w0, int k);

/// Batch entry point: fills out[0..kmax-1] with S_1(x)..S_kmax(x),
/// sharing ONE exp(-2z) evaluation between the coth and csch^2 kernels
/// instead of paying one std::exp per order.  Bit-identical to kmax
/// separate harmonic_pole_sum calls (same branch structure, same
/// operation order; the exponential is a pure common subexpression).
/// Throws for kmax outside [1, 4].
void harmonic_pole_sums(cplx x, double w0, int kmax, cplx* out);

/// Numerically stable coth / csch^2 on the whole complex plane (series
/// near 0, exponential form elsewhere); exposed for testing.
cplx stable_coth(cplx z);
cplx stable_csch2(cplx z);

/// coth(z) and csch^2(z) from one shared exp(-2z); each component is
/// bit-identical to the standalone function.
struct CothCsch2 {
  cplx coth;
  cplx csch2;
};
CothCsch2 stable_coth_csch2(cplx z);

class AliasingSum {
 public:
  /// Requires a strictly proper A (the PLL open-loop gain decays like
  /// 1/s^2, so its aliasing sum converges absolutely).  For relative
  /// degree 1 the symmetric/principal-value convention applies to both
  /// truncated and exact evaluation, so they remain consistent.
  AliasingSum(RationalFunction a, double w0);

  const RationalFunction& transfer() const { return a_; }
  double w0() const { return w0_; }

  // ---- compiled-plan extraction (core/eval_plan) ----------------------
  //
  // The exact closed form is a fixed pole/residue structure; exposing it
  // lets the evaluation-plan layer flatten every channel's terms into
  // contiguous tables at model-construction time instead of re-walking
  // the decomposition per grid point.

  /// The partial-fraction decomposition the exact path evaluates.
  const PartialFractions& partial_fractions() const { return pf_; }
  /// d: A ~ c_d / s^d at infinity (relative degree).
  int relative_degree() const { return rel_degree_; }
  /// Leading Laurent coefficient c_d (tail order summed in closed form).
  cplx laurent_leading() const { return laurent_d_; }
  /// Next Laurent coefficient c_{d+1}.
  cplx laurent_next() const { return laurent_d1_; }

  /// sum_{|m| <= M} A(s + j m w0) -- the raw truncated sum (what a
  /// finite HTM computes).  Converges only like 1/M because A ~ c/s^d.
  cplx truncated(cplx s, int max_harmonic) const;

  /// Symmetric-pair summation accelerated by an analytic tail
  /// correction: the first two Laurent coefficients of A at infinity are
  /// summed in closed form (via harmonic_pole_sum), so the remaining
  /// numeric tail decays like 1/M^3 instead of 1/M.
  cplx adaptive(cplx s, const AliasingSumOptions& opts = {}) const;

  /// Exact closed form; requires every pole multiplicity <= 4.
  cplx exact(cplx s) const;

 private:
  RationalFunction a_;
  double w0_;
  PartialFractions pf_;
  int rel_degree_;   ///< d: A ~ c_d / s^d at infinity
  cplx laurent_d_;   ///< c_d
  cplx laurent_d1_;  ///< c_{d+1}
};

}  // namespace htmpll

// The effective open-loop gain lambda(s) = sum_m A(s + j m w0) (eq. 37).
//
// This is the quantity the whole paper turns on: the m != 0 aliasing
// terms are what the classical LTI approximation (lambda ~ A) drops, and
// what degrades the phase margin once w_UG approaches w0.
//
// Three evaluation strategies:
//  * truncated:  symmetric partial sum |m| <= M  (what a truncated HTM
//                computes; used for the truncation-order ablation),
//  * adaptive:   symmetric pairs until the tail is negligible,
//  * exact:      closed form via partial fractions and
//                sum_m 1/(x + j m w0)^k  ->  derivatives of
//                (pi/w0) coth(pi x / w0); no truncation error at all.
//
// The exact form also proves the link to the z-domain baseline: by the
// Poisson summation formula, lambda(s) = T * sum_n a(nT) e^{-snT} is the
// impulse-invariant z-transform of A evaluated at z = e^{sT} (a(0+) = 0
// because A has relative degree >= 2), which ztrans/ exploits.
#pragma once

#include "htmpll/lti/partial_fractions.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {

struct AliasingSumOptions {
  int max_pairs = 100000;      ///< hard cap on symmetric pairs
  double rel_tol = 1e-13;      ///< pair contribution below this stops...
  int quiet_pairs = 4;         ///< ...after this many consecutive pairs
};

/// S_k(x) = sum_{m in Z} 1/(x + j m w0)^k for k = 1..4 (principal value
/// for k = 1), via the coth closed form.  Throws for k outside [1, 4].
cplx harmonic_pole_sum(cplx x, double w0, int k);

/// Numerically stable coth / csch^2 on the whole complex plane (series
/// near 0, exponential form elsewhere); exposed for testing.
cplx stable_coth(cplx z);
cplx stable_csch2(cplx z);

class AliasingSum {
 public:
  /// Requires a strictly proper A (the PLL open-loop gain decays like
  /// 1/s^2, so its aliasing sum converges absolutely).  For relative
  /// degree 1 the symmetric/principal-value convention applies to both
  /// truncated and exact evaluation, so they remain consistent.
  AliasingSum(RationalFunction a, double w0);

  const RationalFunction& transfer() const { return a_; }
  double w0() const { return w0_; }

  /// sum_{|m| <= M} A(s + j m w0) -- the raw truncated sum (what a
  /// finite HTM computes).  Converges only like 1/M because A ~ c/s^d.
  cplx truncated(cplx s, int max_harmonic) const;

  /// Symmetric-pair summation accelerated by an analytic tail
  /// correction: the first two Laurent coefficients of A at infinity are
  /// summed in closed form (via harmonic_pole_sum), so the remaining
  /// numeric tail decays like 1/M^3 instead of 1/M.
  cplx adaptive(cplx s, const AliasingSumOptions& opts = {}) const;

  /// Exact closed form; requires every pole multiplicity <= 4.
  cplx exact(cplx s) const;

 private:
  RationalFunction a_;
  double w0_;
  PartialFractions pf_;
  int rel_degree_;   ///< d: A ~ c_d / s^d at infinity
  cplx laurent_d_;   ///< c_d
  cplx laurent_d1_;  ///< c_{d+1}
};

}  // namespace htmpll

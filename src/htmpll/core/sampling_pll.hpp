// The paper's PLL input-output model (Section 4).
//
// Loop equation (eq. 26):  theta = G (theta_ref - theta) with
//   G(s) = H_VCO(s) H_LF(s) H_PFD(s)            (eq. 27)
// Because H_PFD = (w0/2pi) l l^T is rank one, G = V~ l^T with
//   V~(s) = (w0/2pi) H_VCO(s) H_LF(s) l          (eq. 29)
// and Sherman-Morrison-Woodbury gives the closed form (eqs. 31-34)
//   theta~ = V~(s) l^T / (1 + lambda(s)) theta~_ref,
//   lambda(s) = l^T V~(s).
//
// For a time-invariant VCO, V~_n(s) = A(s + j n w0) and lambda is the
// aliasing sum of eq. 37; the baseband closed-loop transfer is eq. 38:
//   H_{0,0}(s) = A(s) / (1 + lambda(s)).
//
// This class provides both the fast scalar path (time-invariant VCO, the
// paper's Section 5 setting) and the general LPTV-VCO path with a
// non-trivial impulse sensitivity function (ISF), where lambda is
// computed per ISF harmonic through exact aliasing sums -- the "extension
// to arbitrary ... behavior" the paper mentions.
#pragma once

#include <memory>
#include <vector>

#include "htmpll/core/aliasing_sum.hpp"
#include "htmpll/core/builders.hpp"
#include "htmpll/core/htm.hpp"
#include "htmpll/lti/loop_filter.hpp"

namespace htmpll {

enum class LambdaMethod {
  kExact,      ///< coth closed form (no truncation error)
  kAdaptive,   ///< symmetric pairs with tail stopping rule
  kTruncated,  ///< fixed symmetric truncation (what a finite HTM sees)
};

/// How the sampled phase error is delivered to the loop filter -- the
/// paper's "extension to arbitrary PFDs".  Both shapes keep H_PFD rank
/// one (sampling always aliases), but reshape V~ and lambda:
///  * kImpulse: the charge pump's narrow pulses act as Dirac impulses of
///    weight e(mT) (Fig. 4, eq. 16) -- the paper's model.
///  * kZeroOrderHold: a sample-and-hold detector holds Icp*e(mT)/T for
///    the full period (same charge per cycle, unity DC gain).  Each
///    V~ component picks up H_zoh(s + j m w0) =
///    (1 - e^{-sT}) / ((s + j m w0) T)  -- note e^{-sT} is T-periodic in
///    the harmonic index, so the exact lambda machinery still applies.
enum class PfdShape {
  kImpulse,
  kZeroOrderHold,
};

struct SamplingPllOptions {
  LambdaMethod lambda_method = LambdaMethod::kExact;
  int truncation = 16;  ///< K for kTruncated lambda and HTM assembly
  PfdShape pfd_shape = PfdShape::kImpulse;
  /// Compile an EvalPlan at construction and serve the grid APIs
  /// through its batch kernels (<= 1e-12 relative agreement with the
  /// scalar paths).  False forces the scalar per-point loops, whose
  /// grid results are bit-identical to the point-wise calls.
  bool use_eval_plan = true;
};

class EvalPlan;

class SamplingPllModel {
 public:
  /// `isf` is the VCO impulse sensitivity function normalized so its DC
  /// coefficient is real; the effective v(t) Fourier coefficients are
  /// v_k = kvco * isf_k.  The default (DC-only, coefficient 1) is the
  /// time-invariant VCO of the paper's Section 5.
  /// `extra_loop_dynamics` multiplies the loop-filter transfer function
  /// -- use it for loop delay (lti/delay.hpp), parasitic poles, or any
  /// additional LTI stage in the PFD->VCO path.
  explicit SamplingPllModel(
      PllParameters params,
      HarmonicCoefficients isf = HarmonicCoefficients(cplx{1.0}),
      SamplingPllOptions opts = {},
      RationalFunction extra_loop_dynamics = RationalFunction::constant(1.0));

  const PllParameters& parameters() const { return params_; }
  const SamplingPllOptions& options() const { return opts_; }
  const HarmonicCoefficients& isf() const { return isf_; }
  double w0() const { return params_.w0; }
  bool time_invariant_vco() const { return isf_.is_dc_only(); }
  /// True when a compiled evaluation plan backs the grid APIs.
  bool has_eval_plan() const { return plan_ != nullptr; }

  /// Continuous-time LTI open-loop gain A(s) (eq. 35), with
  /// v0 = kvco * isf_0 (includes any extra loop dynamics).
  const RationalFunction& open_loop_gain() const { return a_; }

  /// H_LF(s) as the model uses it: Icp * Z_LF(s) * extra dynamics.
  const RationalFunction& loop_filter_tf() const { return hlf_; }

  /// Effective open-loop gain lambda(s) via the configured method.
  cplx lambda(cplx s) const;
  cplx lambda(cplx s, LambdaMethod method, int truncation) const;

  /// Analytic d lambda / ds of the EXACT closed form (independent of
  /// the configured lambda_method), via the order-bump rule
  /// d/ds S_k = -k S_{k+1} applied to every channel's partial-fraction
  /// term; for the ZOH shape the prefactor contributes the product-rule
  /// term T e^{-sT} * (pole-sum).  Requires every pole multiplicity
  /// <= 3 (S_k is implemented through k = 4).  This is the scalar
  /// reference the batched Newton pole search polishes against.
  cplx lambda_derivative(cplx s) const;

  /// lambda_derivative over a grid.  With a compiled plan whose
  /// derivative tables are usable the points stream through the SoA
  /// batch kernels (<= 1e-12 relative agreement with the scalar call);
  /// otherwise the scalar evaluations run on the pool, bit-identical
  /// per slot to lambda_derivative(s_grid[i]).
  CVector lambda_derivative_grid(const CVector& s_grid) const;

  // ---- batched grid evaluation (parallel sweep engine) ----
  //
  // Every *_grid method evaluates its scalar counterpart over a grid of
  // s points on the shared thread pool (HTMPLL_THREADS wide).  With the
  // default use_eval_plan = true the points stream through the compiled
  // EvalPlan's structure-of-arrays batch kernels (core/eval_plan.hpp):
  // slot i agrees with the scalar call at s_grid[i] to <= 1e-12
  // relative error, and is independent of the thread count (points
  // never share accumulators).  With use_eval_plan = false the scalar
  // per-point loop runs instead, hoisting per-point loop-invariant work
  // -- the shifted loop-filter gains H_LF(s + j m w0) *
  // shape(s + j m w0) shared between the truncated lambda sum and the
  // V~ numerators -- into a per-point table; slot i of that path is
  // BIT-IDENTICAL to the scalar call at s_grid[i] for every method and
  // PFD shape.

  /// lambda over a grid via the configured / an explicit method.
  CVector lambda_grid(const CVector& s_grid) const;
  CVector lambda_grid(const CVector& s_grid, LambdaMethod method,
                      int truncation) const;

  /// H_{0,0} (eq. 38) over a grid.
  CVector baseband_transfer_grid(const CVector& s_grid) const;

  /// Classical A/(1+A) over a grid.
  CVector lti_baseband_transfer_grid(const CVector& s_grid) const;

  /// 1 - H_{0,0} over a grid.
  CVector baseband_error_transfer_grid(const CVector& s_grid) const;

  /// H_{n,0} for several output bands over one grid, sharing a single
  /// lambda evaluation and shifted-gain table per grid point:
  /// result[b][i] == closed_loop(bands[b], s_grid[i]) bit-identically,
  /// at roughly 1/bands.size() of the point-wise cost.
  std::vector<CVector> closed_loop_grid(const std::vector<int>& bands,
                                        const CVector& s_grid) const;

  /// V~ components for |n| <= truncation (eq. 29):
  /// result[n + truncation] = V~_n(s).
  CVector vtilde(cplx s, int truncation) const;
  cplx vtilde_element(int n, cplx s) const;

  /// Closed-loop HTM element H_{n,m}(s) = V~_n(s)/(1 + lambda(s))
  /// (eq. 36: all columns of the closed-loop HTM are identical because
  /// the reference enters through the sampler).
  cplx closed_loop(int n, cplx s) const;

  /// Baseband-to-baseband transfer H_{0,0}(s) (eq. 38).
  cplx baseband_transfer(cplx s) const;

  /// Classical LTI approximation A/(1+A) (the paper's comparison case).
  cplx lti_baseband_transfer(cplx s) const;

  /// Phase-error (input-to-error) baseband transfer
  /// E(s) = 1 - H_{0,0}(s) = (1 + lambda - A)/(1 + lambda).
  cplx baseband_error_transfer(cplx s) const;

  // ---- full-HTM assembly (reference path and LPTV verification) ----

  /// G(s) = H_VCO H_LF H_PFD assembled from the block builders.
  Htm open_loop_htm(cplx s, int truncation) const;

  /// Closed-loop HTM via the rank-one closed form (eq. 34).
  Htm closed_loop_htm(cplx s, int truncation) const;

  /// Closed-loop HTM via a dense (I+G)^{-1} G solve (reference).
  Htm closed_loop_htm_dense(cplx s, int truncation) const;

 private:
  /// Rational, m-shiftable part of the PFD shape (1/(sigma T) for ZOH);
  /// the T-periodic prefactor (1 - e^{-sT}) is applied separately.
  cplx shape_factor(cplx s_m) const;
  /// The T-periodic (harmonic-independent) prefactor of the PFD shape.
  cplx shape_prefactor(cplx s) const;
  /// H_LF(s_m) * shape_factor(s_m) -- the m-shifted filter gain every
  /// V~ component and truncated-lambda term is built from.
  cplx shifted_gain(cplx s_m) const;
  /// Per-point memo of shifted_gain over the harmonic offsets; lets the
  /// grid paths reuse one evaluation per offset without changing bits.
  struct ShiftedGainCache;
  /// V~_n(s) with an optional shared gain table (nullptr = compute).
  cplx vtilde_element_impl(int n, cplx s, ShiftedGainCache* cache) const;
  /// Truncated-HTM lambda with an optional shared gain table.
  cplx lambda_truncated_impl(cplx s, int truncation,
                             ShiftedGainCache* cache) const;

  PllParameters params_;
  HarmonicCoefficients isf_;
  SamplingPllOptions opts_;
  RationalFunction hlf_;  ///< Icp * Z_LF(s)
  RationalFunction a_;    ///< A(s), eq. 35
  /// Exact lambda machinery: per ISF harmonic k, the aliasing sum of
  /// B_k(s) = (w0/2pi) v_k H_LF(s) / (s + j k w0); lambda = sum_k sums.
  struct HarmonicChannel {
    int k;
    cplx v_k;
    AliasingSum sum;
  };
  std::vector<HarmonicChannel> channels_;
  /// Compiled batch-evaluation tables (core/eval_plan.hpp); null when
  /// opts_.use_eval_plan is false.  Immutable and shared across model
  /// copies.
  std::shared_ptr<const EvalPlan> plan_;

  friend class EvalPlan;
};

}  // namespace htmpll

#include "htmpll/core/symbolic.hpp"

#include <sstream>

#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

LambdaExpression::LambdaExpression(const RationalFunction& a, double w0)
    : w0_(w0) {
  HTMPLL_REQUIRE(w0_ > 0.0, "LambdaExpression needs w0 > 0");
  HTMPLL_REQUIRE(a.is_strictly_proper(),
                 "lambda closed form requires strictly proper A(s)");
  const PartialFractions pf(a);
  for (const PoleTerm& term : pf.terms()) {
    HTMPLL_REQUIRE(term.residues.size() <= 3,
                   "pole multiplicity must be <= 3 so that the derivative "
                   "stays within the implemented S_k family");
    for (std::size_t j = 0; j < term.residues.size(); ++j) {
      if (term.residues[j] == cplx{0.0}) continue;
      terms_.push_back(CothTerm{term.residues[j], term.pole,
                                static_cast<int>(j) + 1});
    }
  }
}

cplx LambdaExpression::operator()(cplx s) const {
  cplx acc{0.0};
  for (const CothTerm& t : terms_) {
    acc += t.residue * harmonic_pole_sum(s - t.pole, w0_, t.order);
  }
  return acc;
}

CVector LambdaExpression::evaluate_grid(const CVector& s_grid) const {
  CVector out(s_grid.size());
  ThreadPool::global().parallel_for(
      s_grid.size(), [&](std::size_t i) { out[i] = (*this)(s_grid[i]); });
  return out;
}

cplx LambdaExpression::derivative(cplx s) const {
  // d/ds S_k(s - p) = -k S_{k+1}(s - p).
  cplx acc{0.0};
  for (const CothTerm& t : terms_) {
    acc += t.residue * (-static_cast<double>(t.order)) *
           harmonic_pole_sum(s - t.pole, w0_, t.order + 1);
  }
  return acc;
}

LambdaExpression LambdaExpression::differentiated() const {
  LambdaExpression d;
  d.w0_ = w0_;
  d.terms_.reserve(terms_.size());
  for (const CothTerm& t : terms_) {
    HTMPLL_REQUIRE(t.order + 1 <= 4,
                   "differentiation exceeds the implemented S_k family");
    d.terms_.push_back(CothTerm{
        t.residue * (-static_cast<double>(t.order)), t.pole, t.order + 1});
  }
  return d;
}

namespace {

std::string format_complex(cplx c) {
  std::ostringstream os;
  os.precision(6);
  if (std::abs(c.imag()) < 1e-14 * std::max(1.0, std::abs(c.real()))) {
    os << c.real();
  } else {
    os << '(' << c.real() << (c.imag() < 0.0 ? '-' : '+')
       << std::abs(c.imag()) << "j)";
  }
  return os.str();
}

}  // namespace

std::string LambdaExpression::to_string() const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const CothTerm& t : terms_) {
    if (!first) os << " + ";
    first = false;
    os << format_complex(t.residue) << "*S" << t.order << "(s-"
       << format_complex(t.pole) << ')';
  }
  os << "   [S1(x) = (pi/w0) coth(pi x/w0), S_{k+1} = -(1/k) S_k']";
  return os.str();
}

}  // namespace htmpll

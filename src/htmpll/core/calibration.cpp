#include "htmpll/core/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "htmpll/linalg/lu.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

cplx fitted_model_response(double w_ug, double gamma, double w0, double w,
                           bool use_lti_model) {
  const SamplingPllModel model(make_typical_loop(w_ug, w0, gamma));
  const cplx s{0.0, w};
  return use_lti_model ? model.lti_baseband_transfer(s)
                       : model.baseband_transfer(s);
}

namespace {

constexpr double kMinGamma = 1.05;

struct Params {
  double log_wug;
  double log_gamma;
};

/// Stacked real/imag residual vector.  Parameters are clamped to a sane
/// physical box so that wild Gauss-Newton trial steps (before the
/// halving guard rejects them) cannot construct degenerate loops.
RVector residual(const Params& p, const std::vector<double>& w,
                 const CVector& h, double w0, bool lti) {
  const double w_ug =
      std::clamp(std::exp(p.log_wug), 1e-6 * w0, 10.0 * w0);
  const double gamma =
      std::clamp(std::exp(p.log_gamma), kMinGamma, 1e3);
  RVector r(2 * w.size());
  const SamplingPllModel model(make_typical_loop(w_ug, w0, gamma));
  for (std::size_t i = 0; i < w.size(); ++i) {
    const cplx s{0.0, w[i]};
    const cplx m = lti ? model.lti_baseband_transfer(s)
                       : model.baseband_transfer(s);
    const cplx d = m - h[i];
    r[2 * i] = d.real();
    r[2 * i + 1] = d.imag();
  }
  return r;
}

double cost(const RVector& r) {
  double c = 0.0;
  for (double x : r) c += x * x;
  return c;
}

}  // namespace

namespace {

LoopFitResult fit_from_start(const std::vector<double>& w, const CVector& h,
                             double w0, const LoopFitOptions& opts,
                             double start_w_ug_frac, double start_gamma) {
  Params p{std::log(start_w_ug_frac * w0), std::log(start_gamma)};
  RVector r = residual(p, w, h, w0, opts.use_lti_model);
  double c = cost(r);

  LoopFitResult out;
  const double fd = 1e-6;  // central-difference step on log-params
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    // Numeric Jacobian, 2 columns.
    const std::size_t n = r.size();
    RMatrix jac(n, 2);
    for (int col = 0; col < 2; ++col) {
      Params pp = p, pm = p;
      (col == 0 ? pp.log_wug : pp.log_gamma) += fd;
      (col == 0 ? pm.log_wug : pm.log_gamma) -= fd;
      const RVector rp = residual(pp, w, h, w0, opts.use_lti_model);
      const RVector rm = residual(pm, w, h, w0, opts.use_lti_model);
      for (std::size_t i = 0; i < n; ++i) {
        jac(i, col) = (rp[i] - rm[i]) / (2.0 * fd);
      }
    }
    // Normal equations (2x2).
    RMatrix jtj(2, 2);
    RVector jtr(2, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (int a = 0; a < 2; ++a) {
        jtr[a] += jac(i, a) * r[i];
        for (int b = 0; b < 2; ++b) {
          jtj(a, b) += jac(i, a) * jac(i, b);
        }
      }
    }
    // Tiny Levenberg damping keeps the step sane near singularity.
    const double damp = 1e-12 * (jtj(0, 0) + jtj(1, 1));
    jtj(0, 0) += damp;
    jtj(1, 1) += damp;
    RVector step;
    try {
      step = RLu(jtj).solve(jtr);
    } catch (const std::domain_error&) {
      break;  // Jacobian collapsed; report the best point so far
    }

    // Trust-region-style clamp: never move more than one e-fold per
    // parameter per iteration, so a wild early Jacobian cannot throw
    // the iterate against the parameter box.
    const double norm = std::hypot(step[0], step[1]);
    double scale = norm > 1.0 ? 1.0 / norm : 1.0;
    bool improved = false;
    for (int half = 0; half < 24; ++half) {
      Params cand{p.log_wug - scale * step[0],
                  p.log_gamma - scale * step[1]};
      const RVector rc = residual(cand, w, h, w0, opts.use_lti_model);
      const double cc = cost(rc);
      if (cc < c) {
        p = cand;
        r = rc;
        c = cc;
        improved = true;
        break;
      }
      scale *= 0.5;
    }
    if (!improved) break;
    if (scale * std::hypot(step[0], step[1]) < opts.tolerance) {
      out.converged = true;
      break;
    }
  }

  out.w_ug = std::clamp(std::exp(p.log_wug), 1e-6 * w0, 10.0 * w0);
  out.gamma = std::clamp(std::exp(p.log_gamma), kMinGamma, 1e3);
  out.rms_residual = std::sqrt(c / static_cast<double>(w.size()));
  out.iterations = it;
  if (!out.converged) {
    // Declare convergence if the final residual is already tiny.
    out.converged = out.rms_residual < 1e-10;
  }
  return out;
}

}  // namespace

LoopFitResult fit_typical_loop(const std::vector<double>& w,
                               const CVector& h, double w0,
                               const LoopFitOptions& opts) {
  HTMPLL_REQUIRE(w.size() == h.size(), "frequency/data length mismatch");
  HTMPLL_REQUIRE(w.size() >= 2, "need at least two measurement points");
  for (double wi : w) {
    HTMPLL_REQUIRE(wi > 0.0 && wi < 0.5 * w0,
                   "measurement frequencies must lie in (0, w0/2)");
  }
  HTMPLL_REQUIRE(opts.initial_w_ug_frac > 0.0 &&
                     opts.initial_gamma > 1.0,
                 "invalid initial guess");

  // User's starting point first; if it stalls in a poor local minimum
  // (Gauss-Newton is only locally convergent), restart from a small
  // grid and keep the best.
  LoopFitResult best = fit_from_start(w, h, w0, opts,
                                      opts.initial_w_ug_frac,
                                      opts.initial_gamma);
  double data_scale = 0.0;
  for (const cplx& v : h) data_scale = std::max(data_scale, std::abs(v));
  if (best.rms_residual > 1e-4 * std::max(1.0, data_scale)) {
    for (double frac : {0.03, 0.1, 0.22}) {
      for (double gamma : {2.0, 4.0, 8.0}) {
        const LoopFitResult r =
            fit_from_start(w, h, w0, opts, frac, gamma);
        if (r.rms_residual < best.rms_residual) best = r;
      }
    }
  }
  return best;
}

}  // namespace htmpll

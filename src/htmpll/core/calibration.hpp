// Loop-parameter identification from measured closed-loop data.
//
// Lab workflow: drive the reference with small phase modulation, measure
// the complex baseband transfer H_00(j w_i) at a handful of
// frequencies (a vector network / phase-noise analyzer, or our
// measure_baseband_transfer probe), then fit the time-varying model's
// (w_UG, gamma) so eq. 38 reproduces the data.  Near w0/2 an LTI-model
// fit is structurally wrong -- the measured response contains the
// aliasing terms -- so this is a capability the paper's formalism
// specifically enables.
//
// Implementation: Gauss-Newton on log-parameters (positivity for free)
// with central-difference Jacobians and a simple step-halving guard;
// the residual stacks real and imaginary parts of the model-vs-data
// mismatch.
#pragma once

#include <vector>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {

struct LoopFitOptions {
  double initial_w_ug_frac = 0.1;  ///< starting w_UG/w0 guess
  double initial_gamma = 4.0;      ///< starting zero/pole split guess
  int max_iterations = 80;
  double tolerance = 1e-10;        ///< relative step-size stop
  /// Fit the classical LTI model instead of the time-varying one (for
  /// comparison studies -- shows the LTI fit's structural bias).
  bool use_lti_model = false;
};

struct LoopFitResult {
  double w_ug = 0.0;
  double gamma = 0.0;
  double rms_residual = 0.0;  ///< per-point complex-mismatch rms
  int iterations = 0;
  bool converged = false;
};

/// Fits the typical-loop family (make_typical_loop) to measured complex
/// baseband transfers `h[i] = H_00(j w[i])`.  Requires at least two
/// measurement frequencies inside (0, w0/2).
LoopFitResult fit_typical_loop(const std::vector<double>& w,
                               const CVector& h, double w0,
                               const LoopFitOptions& opts = {});

/// Model evaluation used by the fit (exposed for testing): H_00 of the
/// typical loop with the given parameters, TV or LTI flavor.
cplx fitted_model_response(double w_ug, double gamma, double w0, double w,
                           bool use_lti_model);

}  // namespace htmpll

// Stability analysis of the sampled PLL via the effective open-loop gain
// lambda(s) -- the paper's Fig. 7 machinery.
//
// lambda(jw) is periodic in w with period w0 (shifting s by j w0 permutes
// the aliasing sum), so its gain crossover is searched on (0, w0/2].  The
// phase margin read there is the quantity the paper shows collapsing as
// w_UG/w0 grows, while classical LTI analysis (on A alone) predicts a
// constant margin.
#pragma once

#include <cstddef>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {

struct EffectiveMargins {
  // Classical LTI analysis of A(jw).
  double lti_crossover = 0.0;         ///< w_UG, rad/s
  double lti_phase_margin_deg = 0.0;
  bool lti_found = false;
  // Time-varying analysis of lambda(jw).
  double eff_crossover = 0.0;         ///< w_UG,eff, rad/s
  double eff_phase_margin_deg = 0.0;
  bool eff_found = false;
};

/// Gain crossovers and phase margins of A and lambda.  The lambda search
/// runs over (~1e-4 w0, w0/2); `lti_crossover` seeds the scan density.
EffectiveMargins effective_margins(const SamplingPllModel& model);

struct ClosedLoopSummary {
  double ref_level_db = 0.0;   ///< |H_00| at the low-frequency end
  double peak_db = 0.0;        ///< max |H_00| in dB over the scan
  double peak_freq = 0.0;      ///< rad/s of the peak
  double peaking_db = 0.0;     ///< peak_db - ref_level_db
  double bw_3db = 0.0;         ///< -3 dB (from ref level) bandwidth, rad/s
  bool bw_found = false;
};

/// Sweeps |H_00(jw)| over (w0*1e-4, w0/2) and summarizes peaking and
/// bandwidth -- the behaviors Fig. 6 shows worsening with w_UG/w0.
ClosedLoopSummary closed_loop_summary(const SamplingPllModel& model,
                                      std::size_t grid_points = 800);

/// lambda(j w0/2), which is real for real loops: the sampled loop sits on
/// the edge of oscillation at half the reference rate when this reaches
/// -1 (the time-varying analogue of Gardner's stability limit).
double half_rate_lambda(const SamplingPllModel& model);

/// True when the half-rate criterion alone already predicts instability.
bool predicts_half_rate_instability(const SamplingPllModel& model);

}  // namespace htmpll

#include "htmpll/core/stability.hpp"

#include <cmath>

#include "htmpll/lti/bode.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {

EffectiveMargins effective_margins(const SamplingPllModel& model) {
  EffectiveMargins out;
  const double w0 = model.w0();
  const RationalFunction& a = model.open_loop_gain();

  const FrequencyResponse lti = [&a](double w) { return a(cplx{0.0, w}); };
  // A has two poles at DC, so |A| -> infinity at low w; scan over a wide
  // window around w0.
  if (const auto c = find_gain_crossover(lti, w0 * 1e-5, w0 * 1e3)) {
    out.lti_found = true;
    out.lti_crossover = c->frequency;
    out.lti_phase_margin_deg = c->phase_margin_deg;
  }

  const FrequencyResponse eff = [&model](double w) {
    return model.lambda(cplx{0.0, w});
  };
  // lambda is w0-periodic on the jw axis: the meaningful crossover lives
  // in (0, w0/2].
  if (const auto c = find_gain_crossover(eff, w0 * 1e-5, 0.5 * w0)) {
    out.eff_found = true;
    out.eff_crossover = c->frequency;
    out.eff_phase_margin_deg = c->phase_margin_deg;
  }
  return out;
}

ClosedLoopSummary closed_loop_summary(const SamplingPllModel& model,
                                      std::size_t grid_points) {
  HTMPLL_REQUIRE(grid_points >= 8, "closed_loop_summary needs a real grid");
  const double w0 = model.w0();
  const std::vector<double> grid =
      logspace(w0 * 1e-4, 0.5 * w0, grid_points);

  // Batched H_00 evaluation (parallel over the grid); the summary scan
  // below stays sequential because the -3 dB crossing is order-dependent.
  const CVector h = model.baseband_transfer_grid(jw_grid(grid));

  ClosedLoopSummary out;
  out.ref_level_db = magnitude_db(h[0]);
  out.peak_db = out.ref_level_db;
  out.peak_freq = grid[0];

  double prev_db = out.ref_level_db;
  double prev_w = grid[0];
  const double cutoff = out.ref_level_db - 3.0103;  // half power
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double db = magnitude_db(h[i]);
    if (db > out.peak_db) {
      out.peak_db = db;
      out.peak_freq = grid[i];
    }
    if (!out.bw_found && prev_db >= cutoff && db < cutoff) {
      // Log-linear interpolation of the crossing.
      const double t = (cutoff - prev_db) / (db - prev_db);
      out.bw_3db = prev_w * std::pow(grid[i] / prev_w, t);
      out.bw_found = true;
    }
    prev_db = db;
    prev_w = grid[i];
  }
  out.peaking_db = out.peak_db - out.ref_level_db;
  return out;
}

double half_rate_lambda(const SamplingPllModel& model) {
  const cplx l = model.lambda(cplx{0.0, 0.5 * model.w0()});
  return l.real();
}

bool predicts_half_rate_instability(const SamplingPllModel& model) {
  return half_rate_lambda(model) <= -1.0;
}

}  // namespace htmpll

#include "htmpll/core/stability.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {

namespace {

struct BatchedCrossover {
  bool found = false;
  double frequency = 0.0;
  double phase_margin_deg = 0.0;
};

/// Interior probes per refinement round: the bracket shrinks by a
/// factor kRefine + 1 per batched evaluation, so reaching the scalar
/// search's 1e-10 relative tolerance from a 600-point log grid takes
/// ~7 rounds instead of ~30 sequential bisection steps.
constexpr int kRefine = 16;

/// Grid-first twin of find_gain_crossover on a batch-evaluable
/// response: one chunked log-grid pass brackets the first downward
/// |H| = 1 crossing (same grid and predicate as the scalar scan), and
/// vectorized interval-refinement rounds narrow it.  The phase margin
/// is then unwrapped along the samples already in hand -- the bracket
/// grid up to the crossing plus every refinement probe below the
/// crossover -- so only H(j wc) itself costs an extra evaluation.
/// `eval` maps a vector of frequencies to H(jw) samples (the model's
/// compiled lambda plan, or the SIMD rational kernel for A).  Agrees
/// with the scalar search to the bisection tolerance (<= 1e-9 relative
/// in practice).
template <class BatchEval>
BatchedCrossover crossover_batched(const BatchEval& eval, double w_lo,
                                   double w_hi,
                                   const MarginOptions& opts = {}) {
  BatchedCrossover out;
  const std::vector<double> grid = logspace(w_lo, w_hi, opts.grid_points);

  // Bracket pass in plan-block-sized chunks with early exit at the
  // first downward |lambda| = 1 crossing: the crossover sits below the
  // top of the scan for every stable loop, so the tail of the grid
  // never needs evaluating.  The samples seen agree point-for-point
  // with a whole-grid pass (chunking never changes values).
  constexpr std::size_t kChunk = 128;
  CVector lam;
  lam.reserve(grid.size());
  std::size_t hit = 0;
  double prev_mag = 0.0;
  for (std::size_t base = 0; base < grid.size() && hit == 0;
       base += kChunk) {
    const std::size_t end = std::min(grid.size(), base + kChunk);
    const std::vector<double> part(grid.begin() + base, grid.begin() + end);
    const CVector lp = eval(part);
    lam.insert(lam.end(), lp.begin(), lp.end());
    for (std::size_t i = base == 0 ? 1 : base; i < end; ++i) {
      const double mag = std::abs(lam[i]);
      if (i == 1) prev_mag = std::abs(lam[0]);
      if (prev_mag >= 1.0 && mag < 1.0) {
        hit = i;
        break;
      }
      prev_mag = mag;
    }
  }
  if (hit == 0) return out;

  // Refinement: split [a, b] with kRefine interior log-spaced probes
  // per round; |lambda(a)| >= 1 > |lambda(b)| is the loop invariant.
  double a = grid[hit - 1], b = grid[hit];
  std::vector<double> probes(kRefine);
  std::vector<std::pair<double, cplx>> refine_samples;
  for (int round = 0; round < 200 && (b - a) > opts.tolerance * b;
       ++round) {
    const double step = std::pow(b / a, 1.0 / (kRefine + 1));
    double w = a;
    for (int j = 0; j < kRefine; ++j) {
      w *= step;
      probes[j] = w;
    }
    const CVector lp = eval(probes);
    double na = a, nb = b;
    for (int j = 0; j < kRefine; ++j) {
      refine_samples.emplace_back(probes[static_cast<std::size_t>(j)],
                                  lp[static_cast<std::size_t>(j)]);
      if (std::abs(lp[static_cast<std::size_t>(j)]) < 1.0) {
        nb = probes[static_cast<std::size_t>(j)];
        break;
      }
      na = probes[static_cast<std::size_t>(j)];
    }
    a = na;
    b = nb;
  }
  const double wc = std::sqrt(a * b);

  // Phase margin: unwrap along the samples already evaluated -- the
  // bracket grid below the crossing, then the refinement probes below
  // wc in ascending order, then lambda(j wc) itself (the one extra
  // point).  The walk density matches the scalar search's own scan
  // grid, so the unwrap lands on the same branch.
  std::sort(refine_samples.begin(), refine_samples.end(),
            [](const std::pair<double, cplx>& x,
               const std::pair<double, cplx>& y) {
              return x.first < y.first;
            });
  const CVector lam_wc = eval(std::vector<double>{wc});
  std::vector<double> raw;
  raw.reserve(hit + refine_samples.size() + 1);
  for (std::size_t i = 0; i < hit; ++i) raw.push_back(std::arg(lam[i]));
  for (const auto& [w, lw] : refine_samples) {
    if (w < wc) raw.push_back(std::arg(lw));
  }
  raw.push_back(std::arg(lam_wc[0]));
  const std::vector<double> un = unwrap_phase(raw);

  out.found = true;
  out.frequency = wc;
  out.phase_margin_deg = 180.0 + un.back() * 180.0 / std::numbers::pi;
  return out;
}

}  // namespace

EffectiveMargins effective_margins(const SamplingPllModel& model) {
  EffectiveMargins out;
  const double w0 = model.w0();
  const RationalFunction& a = model.open_loop_gain();

  // A has two poles at DC, so |A| -> infinity at low w; scan over a wide
  // window around w0.  With a compiled plan both crossover hunts run
  // grid-first: lambda through the model's batch kernels, A through the
  // SIMD rational kernel (<= 1e-9 relative agreement with the scalar
  // searches).  Without one (use_eval_plan = false) the scalar probe
  // chains below are bit-identical to the original implementation.
  if (model.has_eval_plan()) {
    const CVector& num = a.num().coefficients();
    const CVector& den = a.den().coefficients();
    const auto lti_eval = [&num, &den](const std::vector<double>& ws) {
      const std::size_t n = ws.size();
      std::vector<double> s_re(n, 0.0), out_re(n), out_im(n), tmp_re(n),
          tmp_im(n);
      CVector h(n);
      batch_rational(num.data(), num.size(), den.data(), den.size(),
                     s_re.data(), ws.data(), n, out_re.data(),
                     out_im.data(), tmp_re.data(), tmp_im.data());
      join_planes(out_re.data(), out_im.data(), n, h.data());
      return h;
    };
    if (const BatchedCrossover c =
            crossover_batched(lti_eval, w0 * 1e-5, w0 * 1e3);
        c.found) {
      out.lti_found = true;
      out.lti_crossover = c.frequency;
      out.lti_phase_margin_deg = c.phase_margin_deg;
    }
    const auto lambda_eval = [&model](const std::vector<double>& ws) {
      return model.lambda_grid(jw_grid(ws));
    };
    if (const BatchedCrossover c =
            crossover_batched(lambda_eval, w0 * 1e-5, 0.5 * w0);
        c.found) {
      out.eff_found = true;
      out.eff_crossover = c.frequency;
      out.eff_phase_margin_deg = c.phase_margin_deg;
    }
    return out;
  }

  const FrequencyResponse lti = [&a](double w) { return a(cplx{0.0, w}); };
  if (const auto c = find_gain_crossover(lti, w0 * 1e-5, w0 * 1e3)) {
    out.lti_found = true;
    out.lti_crossover = c->frequency;
    out.lti_phase_margin_deg = c->phase_margin_deg;
  }
  // lambda is w0-periodic on the jw axis: the meaningful crossover lives
  // in (0, w0/2].
  const FrequencyResponse eff = [&model](double w) {
    return model.lambda(cplx{0.0, w});
  };
  if (const auto c = find_gain_crossover(eff, w0 * 1e-5, 0.5 * w0)) {
    out.eff_found = true;
    out.eff_crossover = c->frequency;
    out.eff_phase_margin_deg = c->phase_margin_deg;
  }
  return out;
}

ClosedLoopSummary closed_loop_summary(const SamplingPllModel& model,
                                      std::size_t grid_points) {
  HTMPLL_REQUIRE(grid_points >= 8, "closed_loop_summary needs a real grid");
  const double w0 = model.w0();
  const std::vector<double> grid =
      logspace(w0 * 1e-4, 0.5 * w0, grid_points);

  // Batched H_00 evaluation (parallel over the grid); the summary scan
  // below stays sequential because the -3 dB crossing is order-dependent.
  const CVector h = model.baseband_transfer_grid(jw_grid(grid));

  ClosedLoopSummary out;
  out.ref_level_db = magnitude_db(h[0]);
  out.peak_db = out.ref_level_db;
  out.peak_freq = grid[0];

  double prev_db = out.ref_level_db;
  double prev_w = grid[0];
  const double cutoff = out.ref_level_db - 3.0103;  // half power
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double db = magnitude_db(h[i]);
    if (db > out.peak_db) {
      out.peak_db = db;
      out.peak_freq = grid[i];
    }
    if (!out.bw_found && prev_db >= cutoff && db < cutoff) {
      // Log-linear interpolation of the crossing.
      const double t = (cutoff - prev_db) / (db - prev_db);
      out.bw_3db = prev_w * std::pow(grid[i] / prev_w, t);
      out.bw_found = true;
    }
    prev_db = db;
    prev_w = grid[i];
  }
  out.peaking_db = out.peak_db - out.ref_level_db;
  return out;
}

double half_rate_lambda(const SamplingPllModel& model) {
  const cplx l = model.lambda(cplx{0.0, 0.5 * model.w0()});
  return l.real();
}

bool predicts_half_rate_instability(const SamplingPllModel& model) {
  return half_rate_lambda(model) <= -1.0;
}

}  // namespace htmpll

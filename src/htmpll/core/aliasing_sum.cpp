#include "htmpll/core/aliasing_sum.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/obs/diag.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

// Shared building blocks: every public entry point is assembled from
// these so values derived from one exp(-2z) are bit-identical to values
// computed standalone (same expressions, same operation order).

inline cplx coth_from_e(cplx e) {
  return (1.0 + e) / (1.0 - e);  // |e| <= 1 since Re z >= 0
}

inline cplx csch2_from_e(cplx e) {
  const cplx d = 1.0 - e;
  return 4.0 * e / (d * d);
}

// coth z = 1/z + z/3 - z^3/45 + O(z^5)
inline cplx coth_series(cplx z) {
  const cplx z2 = z * z;
  return 1.0 / z + z * (1.0 / 3.0 - z2 / 45.0);
}

// csch^2 z = 1/z^2 - 1/3 + z^2/15 + O(z^4)
inline cplx csch2_series(cplx z) {
  const cplx z2 = z * z;
  return 1.0 / z2 - 1.0 / 3.0 + z2 / 15.0;
}

}  // namespace

cplx stable_coth(cplx z) {
  if (z.real() < 0.0) return -stable_coth(-z);
  if (std::abs(z) < 1e-3) return coth_series(z);
  return coth_from_e(std::exp(-2.0 * z));
}

cplx stable_csch2(cplx z) {
  if (z.real() < 0.0) z = -z;  // csch^2 is even
  if (std::abs(z) < 1e-3) return csch2_series(z);
  return csch2_from_e(std::exp(-2.0 * z));
}

CothCsch2 stable_coth_csch2(cplx z) {
  const bool flip = z.real() < 0.0;  // coth is odd, csch^2 is even
  const cplx zp = flip ? -z : z;
  if (std::abs(zp) < 1e-3) {
    const cplx ct = coth_series(zp);
    return {flip ? -ct : ct, csch2_series(zp)};
  }
  const cplx e = std::exp(-2.0 * zp);
  const cplx ct = coth_from_e(e);
  return {flip ? -ct : ct, csch2_from_e(e)};
}

cplx harmonic_pole_sum(cplx x, double w0, int k) {
  HTMPLL_REQUIRE(w0 > 0.0, "harmonic_pole_sum needs w0 > 0");
  HTMPLL_REQUIRE(k >= 1 && k <= 4,
                 "harmonic_pole_sum supports pole multiplicities 1..4");
  const double c = std::numbers::pi / w0;
  const cplx u = c * x;
  switch (k) {
    case 1:
      return c * stable_coth(u);
    case 2:
      return c * c * stable_csch2(u);
    case 3: {
      const CothCsch2 h = stable_coth_csch2(u);
      return c * c * c * h.csch2 * h.coth;
    }
    default: {
      // S4 = (c^4/3) (2 csch^2 u coth^2 u + csch^4 u)
      const CothCsch2 h = stable_coth_csch2(u);
      const cplx cs2 = h.csch2;
      const cplx ct = h.coth;
      return (c * c * c * c / 3.0) * (2.0 * cs2 * ct * ct + cs2 * cs2);
    }
  }
}

void harmonic_pole_sums(cplx x, double w0, int kmax, cplx* out) {
  HTMPLL_REQUIRE(w0 > 0.0, "harmonic_pole_sums needs w0 > 0");
  HTMPLL_REQUIRE(kmax >= 1 && kmax <= 4,
                 "harmonic_pole_sums supports pole multiplicities 1..4");
  const double c = std::numbers::pi / w0;
  const cplx u = c * x;
  if (kmax == 1) {
    out[0] = c * stable_coth(u);
    return;
  }
  const CothCsch2 h = stable_coth_csch2(u);
  const cplx ct = h.coth;
  const cplx cs2 = h.csch2;
  out[0] = c * ct;
  out[1] = c * c * cs2;
  if (kmax >= 3) out[2] = c * c * c * cs2 * ct;
  if (kmax >= 4) {
    out[3] = (c * c * c * c / 3.0) * (2.0 * cs2 * ct * ct + cs2 * cs2);
  }
}

AliasingSum::AliasingSum(RationalFunction a, double w0)
    : a_(std::move(a)), w0_(w0), pf_(a_) {
  HTMPLL_REQUIRE(w0_ > 0.0, "AliasingSum needs w0 > 0");
  HTMPLL_REQUIRE(a_.is_strictly_proper(),
                 "aliasing sum diverges for non-strictly-proper A(s)");
  // Laurent expansion at infinity: A = c_d/s^d + c_{d+1}/s^{d+1} + ...
  // With a monic denominator, c_d is the numerator's leading coefficient
  // and c_{d+1} = a_{n-1} - a_n b_{m-1}.
  rel_degree_ = a_.relative_degree();
  const Polynomial& num = a_.num();
  const Polynomial& den = a_.den();
  laurent_d_ = num.leading();
  const cplx a_nm1 =
      num.degree() >= 1 ? num.coefficient(num.degree() - 1) : cplx{0.0};
  const cplx b_mm1 =
      den.degree() >= 1 ? den.coefficient(den.degree() - 1) : cplx{0.0};
  laurent_d1_ = a_nm1 - laurent_d_ * b_mm1;
}

cplx AliasingSum::truncated(cplx s, int max_harmonic) const {
  HTMPLL_REQUIRE(max_harmonic >= 0, "negative truncation");
  cplx acc = a_(s);
  for (int m = 1; m <= max_harmonic; ++m) {
    const cplx jm{0.0, static_cast<double>(m) * w0_};
    acc += a_(s + jm) + a_(s - jm);
  }
  return acc;
}

cplx AliasingSum::adaptive(cplx s, const AliasingSumOptions& opts) const {
  // Orders whose tails we can sum in closed form (harmonic_pole_sum
  // supports k <= 4).
  const int k1 = rel_degree_;
  const int k2 = rel_degree_ + 1;
  const bool corr1 = k1 >= 1 && k1 <= 4 && laurent_d_ != cplx{0.0};
  const bool corr2 = k2 >= 1 && k2 <= 4 && laurent_d1_ != cplx{0.0};

  auto pole_pow = [](cplx x, int k) {
    cplx p{1.0};
    for (int i = 0; i < k; ++i) p *= x;
    return 1.0 / p;
  };

  cplx acc = a_(s);
  cplx partial1 = corr1 ? pole_pow(s, k1) : cplx{0.0};
  cplx partial2 = corr2 ? pole_pow(s, k2) : cplx{0.0};
  int quiet = 0;
  bool settled = false;
  for (int m = 1; m <= opts.max_pairs; ++m) {
    const cplx jm{0.0, static_cast<double>(m) * w0_};
    const cplx pair = a_(s + jm) + a_(s - jm);
    acc += pair;
    // Residual after removing the analytically-summed leading orders
    // decays like 1/m^(d+2); use it for the stopping rule.
    cplx residual = pair;
    if (corr1) {
      const cplx p1 = pole_pow(s + jm, k1) + pole_pow(s - jm, k1);
      partial1 += p1;
      residual -= laurent_d_ * p1;
    }
    if (corr2) {
      const cplx p2 = pole_pow(s + jm, k2) + pole_pow(s - jm, k2);
      partial2 += p2;
      residual -= laurent_d1_ * p2;
    }
    if (std::abs(residual) <=
        opts.rel_tol * std::max(1e-300, std::abs(acc))) {
      if (++quiet >= opts.quiet_pairs) {
        settled = true;
        break;
      }
    } else {
      quiet = 0;
    }
  }
  if (!settled) {
    // Ran out of pairs before the stopping rule fired: the truncation
    // error at this point is not bounded by rel_tol.
    obs::diag_event(obs::DiagReason::kHtmTruncationSaturated,
                    static_cast<double>(opts.max_pairs));
  }
  // Tail corrections: orders k1 and k2 = k1 + 1 share one exp(-2z) when
  // both are active (bit-identical to two standalone calls).
  cplx tail1{0.0};
  cplx tail2{0.0};
  if (corr1 && corr2) {
    cplx sums[4];
    harmonic_pole_sums(s, w0_, k2, sums);
    tail1 = sums[k1 - 1];
    tail2 = sums[k2 - 1];
  } else if (corr1) {
    tail1 = harmonic_pole_sum(s, w0_, k1);
  } else if (corr2) {
    tail2 = harmonic_pole_sum(s, w0_, k2);
  }
  if (corr1) acc += laurent_d_ * (tail1 - partial1);
  if (corr2) acc += laurent_d1_ * (tail2 - partial2);
  return acc;
}

cplx AliasingSum::exact(cplx s) const {
  // lambda(s) = sum_i sum_k r_ik S_k(s - p_i); the direct part is zero
  // because A is strictly proper.  One harmonic_pole_sums call per pole
  // shares the exponential across that pole's multiplicity orders.
  cplx acc{0.0};
  cplx sums[4];
  for (const PoleTerm& term : pf_.terms()) {
    const cplx x = s - term.pole;
    harmonic_pole_sums(x, w0_, static_cast<int>(term.residues.size()),
                       sums);
    for (std::size_t j = 0; j < term.residues.size(); ++j) {
      acc += term.residues[j] * sums[j];
    }
  }
  return acc;
}

}  // namespace htmpll

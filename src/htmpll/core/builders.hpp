// HTM builders for the PLL building blocks of Section 3.
//
//  * lti_htm        -- eq. 12: diagonal H(s + j m w0)
//  * multiplier_htm -- eq. 13: Toeplitz of Fourier coefficients P_{n-m}
//  * sampling_pfd_htm -- eq. 19: rank-one (w0/2pi) * ones (impulse-train
//                        sampling of the phase error; Fig. 4 equivalence)
//  * vco_htm        -- eq. 25: ISF multiplier followed by an integrator,
//                      H_{n,m} = v_{n-m} / (s + j n w0)
#pragma once

#include <functional>

#include "htmpll/core/htm.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {

/// Fourier coefficient set {c_k, |k| <= J} of a T-periodic waveform,
/// stored as [c_{-J}, ..., c_0, ..., c_J].
class HarmonicCoefficients {
 public:
  /// DC-only (time-invariant) coefficient set.
  explicit HarmonicCoefficients(cplx dc);

  /// Full set; size must be odd (2J+1).
  explicit HarmonicCoefficients(CVector coeffs);

  /// Coefficient set of a real waveform given c_0 and c_k for k > 0
  /// (c_{-k} = conj(c_k)).
  static HarmonicCoefficients real_waveform(double dc,
                                            const CVector& positive);

  int max_harmonic() const { return j_; }
  /// c_k, zero outside |k| <= J.
  cplx operator[](int k) const;

  bool is_dc_only(double tol = 0.0) const;

 private:
  int j_;
  CVector c_;
};

/// eq. 12: HTM of an LTI block given its transfer function.
Htm lti_htm(const RationalFunction& h, int truncation, double w0, cplx s);

/// Same, for non-rational responses (evaluated as a function of complex
/// frequency).
Htm lti_htm(const std::function<cplx(cplx)>& h, int truncation, double w0,
            cplx s);

/// eq. 13: HTM of the memoryless multiplication y(t) = p(t) u(t).
Htm multiplier_htm(const HarmonicCoefficients& p, int truncation, double w0,
                   cplx s);

/// eq. 19: HTM of the sampling PFD's impulse-train multiplication,
/// (w0/2pi) * l l^T.  The charge-pump current lives in the loop filter
/// model (eq. 21), exactly as in the paper.
Htm sampling_pfd_htm(int truncation, double w0, cplx s);

/// eq. 25: HTM of the VCO phase response: multiplication by the periodic
/// impulse sensitivity function v(t) followed by integration.
/// Requires s not equal to -j n w0 for any |n| <= K (no evaluation on the
/// integrator poles).
Htm vco_htm(const HarmonicCoefficients& isf, int truncation, double w0,
            cplx s);

}  // namespace htmpll

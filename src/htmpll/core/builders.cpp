#include "htmpll/core/builders.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// One HTM block constructed; the companion histogram records the
/// truncation order, so telemetry shows the matrix-size distribution
/// and not just a raw build count.
void count_htm_build(int truncation) {
  static obs::Counter& builds = obs::counter("core.htm_builds");
  static obs::Histogram& order = obs::histogram("core.htm_build_order");
  builds.add();
  order.observe(static_cast<std::uint64_t>(truncation < 0 ? 0 : truncation));
}

}  // namespace

HarmonicCoefficients::HarmonicCoefficients(cplx dc) : j_(0), c_{dc} {}

HarmonicCoefficients::HarmonicCoefficients(CVector coeffs)
    : c_(std::move(coeffs)) {
  HTMPLL_REQUIRE(!c_.empty() && c_.size() % 2 == 1,
                 "harmonic coefficient vector must have odd length 2J+1");
  j_ = static_cast<int>(c_.size() / 2);
}

HarmonicCoefficients HarmonicCoefficients::real_waveform(
    double dc, const CVector& positive) {
  const int j = static_cast<int>(positive.size());
  CVector c(2 * positive.size() + 1);
  c[positive.size()] = dc;
  for (int k = 1; k <= j; ++k) {
    c[positive.size() + k] = positive[k - 1];
    c[positive.size() - k] = std::conj(positive[k - 1]);
  }
  return HarmonicCoefficients(std::move(c));
}

cplx HarmonicCoefficients::operator[](int k) const {
  if (k < -j_ || k > j_) return cplx{0.0};
  return c_[static_cast<std::size_t>(k + j_)];
}

bool HarmonicCoefficients::is_dc_only(double tol) const {
  for (int k = 1; k <= j_; ++k) {
    if (std::abs((*this)[k]) > tol || std::abs((*this)[-k]) > tol) {
      return false;
    }
  }
  return true;
}

Htm lti_htm(const RationalFunction& h, int truncation, double w0, cplx s) {
  return lti_htm([&h](cplx x) { return h(x); }, truncation, w0, s);
}

Htm lti_htm(const std::function<cplx(cplx)>& h, int truncation, double w0,
            cplx s) {
  // The rational overload delegates here, so each build counts once.
  count_htm_build(truncation);
  Htm out(truncation, w0, s);
  for (int m = -truncation; m <= truncation; ++m) {
    const cplx sm = s + cplx{0.0, static_cast<double>(m) * w0};
    out.at(m, m) = h(sm);
  }
  return out;
}

Htm multiplier_htm(const HarmonicCoefficients& p, int truncation, double w0,
                   cplx s) {
  count_htm_build(truncation);
  Htm out(truncation, w0, s);
  for (int n = -truncation; n <= truncation; ++n) {
    for (int m = -truncation; m <= truncation; ++m) {
      out.at(n, m) = p[n - m];
    }
  }
  return out;
}

Htm sampling_pfd_htm(int truncation, double w0, cplx s) {
  count_htm_build(truncation);
  Htm out(truncation, w0, s);
  const cplx v = w0 / (2.0 * std::numbers::pi);
  for (int n = -truncation; n <= truncation; ++n) {
    for (int m = -truncation; m <= truncation; ++m) {
      out.at(n, m) = v;
    }
  }
  return out;
}

Htm vco_htm(const HarmonicCoefficients& isf, int truncation, double w0,
            cplx s) {
  count_htm_build(truncation);
  Htm out(truncation, w0, s);
  for (int n = -truncation; n <= truncation; ++n) {
    const cplx sn = s + cplx{0.0, static_cast<double>(n) * w0};
    HTMPLL_REQUIRE(std::abs(sn) > 0.0,
                   "vco_htm evaluated on an integrator pole s = -j n w0");
    const cplx integ = 1.0 / sn;
    for (int m = -truncation; m <= truncation; ++m) {
      out.at(n, m) = isf[n - m] * integ;
    }
  }
  return out;
}

}  // namespace htmpll

#include "htmpll/core/sampling_pll.hpp"

#include <algorithm>

#include "htmpll/core/eval_plan.hpp"
#include <cmath>
#include <memory>
#include <numbers>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// Scalar lambda(s) evaluations -- the per-point unit of work every
/// sweep and stability search is built from.
obs::Counter& lambda_eval_counter() {
  static obs::Counter& c = obs::counter("core.lambda_evals");
  return c;
}

}  // namespace

namespace {

/// v_k-scaled per-harmonic rational B_k(s) = (w0/2pi) v_k H_LF(s)/(s+jkw0);
/// lambda(s) = sum_k sum_m B_k(s + j m w0)  (interchange of the double
/// sum over HTM row index n = m + k and column index m).  For a
/// zero-order-hold PFD shape the rational part of H_zoh(s) = 1/(sT)
/// multiplies in; the T-periodic prefactor (1 - e^{-sT}) is applied by
/// the caller after summing.
RationalFunction harmonic_channel_tf(const RationalFunction& hlf, double w0,
                                     int k, cplx v_k, PfdShape shape) {
  const cplx front = v_k * w0 / (2.0 * std::numbers::pi);
  Polynomial den(CVector{cplx{0.0, static_cast<double>(k) * w0},
                         cplx{1.0}});
  cplx gain = front;
  if (shape == PfdShape::kZeroOrderHold) {
    const double t = 2.0 * std::numbers::pi / w0;
    den *= Polynomial::s();
    gain /= t;
  }
  return RationalFunction(Polynomial::constant(gain), den) * hlf;
}

}  // namespace

SamplingPllModel::SamplingPllModel(PllParameters params,
                                   HarmonicCoefficients isf,
                                   SamplingPllOptions opts,
                                   RationalFunction extra_loop_dynamics)
    : params_(params), isf_(std::move(isf)), opts_(opts) {
  HTMPLL_REQUIRE(params_.w0 > 0.0, "reference frequency must be positive");
  HTMPLL_REQUIRE(std::abs(isf_[0].imag()) <=
                     1e-12 * std::max(1.0, std::abs(isf_[0])),
                 "ISF DC coefficient must be real (VCO average gain)");
  HTMPLL_REQUIRE(isf_[0].real() != 0.0,
                 "ISF DC coefficient must be non-zero");

  HTMPLL_REQUIRE(extra_loop_dynamics.is_proper() &&
                     !extra_loop_dynamics.is_zero(),
                 "extra loop dynamics must be proper and non-zero");
  hlf_ = params_.loop_filter_tf() * extra_loop_dynamics;
  const double v0 = params_.kvco * isf_[0].real();
  a_ = RationalFunction::constant(params_.w0 / (2.0 * std::numbers::pi)) *
       RationalFunction::integrator(v0) * hlf_;

  for (int k = -isf_.max_harmonic(); k <= isf_.max_harmonic(); ++k) {
    const cplx v_k = params_.kvco * isf_[k];
    if (v_k == cplx{0.0}) continue;
    channels_.push_back(HarmonicChannel{
        k, v_k,
        AliasingSum(harmonic_channel_tf(hlf_, params_.w0, k, v_k,
                                        opts_.pfd_shape),
                    params_.w0)});
  }

  if (opts_.use_eval_plan) plan_ = EvalPlan::build(*this);
}

cplx SamplingPllModel::shape_factor(cplx s_m) const {
  if (opts_.pfd_shape == PfdShape::kImpulse) return cplx{1.0};
  // ZOH rational part 1/(s_m T); the caller multiplies shape_prefactor.
  const double t = params_.period();
  HTMPLL_REQUIRE(std::abs(s_m) > 0.0,
                 "ZOH shape evaluated on a harmonic of w0; evaluate "
                 "off the harmonic grid");
  return 1.0 / (s_m * t);
}

cplx SamplingPllModel::shape_prefactor(cplx s) const {
  if (opts_.pfd_shape == PfdShape::kImpulse) return cplx{1.0};
  return 1.0 - std::exp(-s * params_.period());
}

cplx SamplingPllModel::shifted_gain(cplx s_m) const {
  return hlf_(s_m) * shape_factor(s_m);
}

namespace {

/// Reusable backing store for a ShiftedGainCache.  Grid sweeps construct
/// one cache per evaluation point; without pooling that is two heap
/// allocations per point, which dominates the cache's own benefit on
/// small tables.  Each thread keeps a small free list of retired
/// buffers, so steady-state sweeps allocate nothing: a cache borrows a
/// buffer in its constructor and returns it in its destructor.  The
/// free list is thread_local, so buffers never migrate between threads
/// and no locking is involved.
struct GainScratch {
  std::vector<cplx> value;
  std::vector<char> ready;
};

std::vector<std::unique_ptr<GainScratch>>& gain_scratch_free_list() {
  thread_local std::vector<std::unique_ptr<GainScratch>> free_list;
  return free_list;
}

std::unique_ptr<GainScratch> acquire_gain_scratch(std::size_t slots) {
  auto& free_list = gain_scratch_free_list();
  std::unique_ptr<GainScratch> s;
  if (!free_list.empty()) {
    s = std::move(free_list.back());
    free_list.pop_back();
  } else {
    s = std::make_unique<GainScratch>();
  }
  s->value.assign(slots, cplx{0.0});
  s->ready.assign(slots, 0);
  return s;
}

void release_gain_scratch(std::unique_ptr<GainScratch> s) {
  gain_scratch_free_list().push_back(std::move(s));
}

}  // namespace

/// Lazily fills shifted_gain values for harmonic offsets |m| <= mmax of
/// one evaluation point.  Reusing a memoized value is bit-identical to
/// recomputing it (same inputs, same code path), so the grid APIs that
/// share this table match the scalar APIs exactly.  One table serves one
/// grid point and is touched by a single thread only; the backing
/// buffers come from a per-thread free list (see GainScratch) so a
/// sweep's point loop performs no steady-state heap allocation.
struct SamplingPllModel::ShiftedGainCache {
  ShiftedGainCache(const SamplingPllModel& model, cplx s, int mmax)
      : model_(model),
        s_(s),
        mmax_(mmax),
        scratch_(acquire_gain_scratch(
            2 * static_cast<std::size_t>(mmax) + 1)) {}

  ~ShiftedGainCache() { release_gain_scratch(std::move(scratch_)); }

  ShiftedGainCache(const ShiftedGainCache&) = delete;
  ShiftedGainCache& operator=(const ShiftedGainCache&) = delete;

  cplx get(int m) {
    const cplx sm =
        s_ + cplx{0.0, static_cast<double>(m) * model_.params_.w0};
    if (m < -mmax_ || m > mmax_) return model_.shifted_gain(sm);
    const auto i = static_cast<std::size_t>(m + mmax_);
    if (!scratch_->ready[i]) {
      scratch_->value[i] = model_.shifted_gain(sm);
      scratch_->ready[i] = 1;
    }
    return scratch_->value[i];
  }

 private:
  const SamplingPllModel& model_;
  cplx s_;
  int mmax_;
  std::unique_ptr<GainScratch> scratch_;
};

cplx SamplingPllModel::lambda(cplx s) const {
  return lambda(s, opts_.lambda_method, opts_.truncation);
}

cplx SamplingPllModel::lambda(cplx s, LambdaMethod method,
                              int truncation) const {
  switch (method) {
    case LambdaMethod::kExact: {
      lambda_eval_counter().add();
      cplx acc{0.0};
      for (const HarmonicChannel& ch : channels_) acc += ch.sum.exact(s);
      return shape_prefactor(s) * acc;
    }
    case LambdaMethod::kAdaptive: {
      lambda_eval_counter().add();
      cplx acc{0.0};
      for (const HarmonicChannel& ch : channels_) acc += ch.sum.adaptive(s);
      return shape_prefactor(s) * acc;
    }
    case LambdaMethod::kTruncated:
      return lambda_truncated_impl(s, truncation, nullptr);
  }
  throw_assertion_failure("unhandled LambdaMethod", __FILE__, __LINE__);
}

cplx SamplingPllModel::lambda_derivative(cplx s) const {
  // d/ds of the exact closed form lambda = pre(s) sum_i sum_k r_ik
  // S_k(s - p_i): each order-k term differentiates to -k r_ik S_{k+1},
  // so one harmonic_pole_sums call per pole serves both the value (the
  // ZOH product rule needs it) and the derivative.
  lambda_eval_counter().add();
  cplx acc{0.0};
  cplx dacc{0.0};
  for (const HarmonicChannel& ch : channels_) {
    for (const PoleTerm& term : ch.sum.partial_fractions().terms()) {
      const int kmax = static_cast<int>(term.residues.size());
      HTMPLL_REQUIRE(kmax >= 1 && kmax <= 3,
                     "analytic lambda derivative requires pole "
                     "multiplicity <= 3 (S_k implemented through k = 4)");
      cplx sums[4];
      harmonic_pole_sums(s - term.pole, params_.w0, kmax + 1, sums);
      for (int k = 1; k <= kmax; ++k) {
        acc += term.residues[static_cast<std::size_t>(k - 1)] * sums[k - 1];
        dacc += term.residues[static_cast<std::size_t>(k - 1)] *
                (-static_cast<double>(k)) * sums[k];
      }
    }
  }
  if (opts_.pfd_shape == PfdShape::kImpulse) return dacc;
  const double t = params_.period();
  const cplx e = std::exp(-s * t);
  return t * e * acc + (1.0 - e) * dacc;
}

CVector SamplingPllModel::lambda_derivative_grid(const CVector& s_grid) const {
  HTMPLL_TRACE_SPAN("core.lambda_grid");
  if (plan_ && plan_->supports_derivative()) {
    return plan_->lambda_derivative_grid(s_grid);
  }
  CVector out(s_grid.size());
  ThreadPool::global().for_each_index(s_grid.size(), [&](std::size_t i) {
    out[i] = lambda_derivative(s_grid[i]);
  });
  return out;
}

cplx SamplingPllModel::lambda_truncated_impl(cplx s, int truncation,
                                             ShiftedGainCache* cache) const {
  // Truncate the HTM row index n (lambda = sum_n V~_n), matching what
  // a finite (2K+1)-harmonic HTM computes.  Counted here (not in the
  // public lambda()) so grid paths that call this impl directly are
  // still accounted for, exactly once.
  lambda_eval_counter().add();
  cplx acc{0.0};
  for (int n = -truncation; n <= truncation; ++n) {
    acc += vtilde_element_impl(n, s, cache);
  }
  return acc;
}

cplx SamplingPllModel::vtilde_element_impl(int n, cplx s,
                                           ShiftedGainCache* cache) const {
  // V~_n(s) = (w0/2pi) / (s + j n w0) * sum_m v_{n-m} H_LF(s + j m w0),
  // the m-sum ranging over the (finitely many) non-zero ISF harmonics.
  const cplx sn = s + cplx{0.0, static_cast<double>(n) * params_.w0};
  HTMPLL_REQUIRE(std::abs(sn) > 0.0,
                 "V~ evaluated on an integrator pole s = -j n w0");
  // channels_ already holds the non-zero (k, v_k = kvco * isf_k) table
  // in ascending-k order, so iterating it is bit-identical to walking
  // the full harmonic range and re-deriving/re-testing each v_k.
  cplx acc{0.0};
  for (const HarmonicChannel& ch : channels_) {
    const int m = n - ch.k;
    const cplx sm = s + cplx{0.0, static_cast<double>(m) * params_.w0};
    acc += ch.v_k * (cache ? cache->get(m) : shifted_gain(sm));
  }
  return shape_prefactor(s) * acc * params_.w0 /
         (2.0 * std::numbers::pi) / sn;
}

cplx SamplingPllModel::vtilde_element(int n, cplx s) const {
  return vtilde_element_impl(n, s, nullptr);
}

CVector SamplingPllModel::vtilde(cplx s, int truncation) const {
  if (plan_) return plan_->vtilde(s, truncation);
  CVector v(2 * static_cast<std::size_t>(truncation) + 1);
  for (int n = -truncation; n <= truncation; ++n) {
    v[static_cast<std::size_t>(n + truncation)] = vtilde_element(n, s);
  }
  return v;
}

cplx SamplingPllModel::closed_loop(int n, cplx s) const {
  return vtilde_element(n, s) / (1.0 + lambda(s));
}

cplx SamplingPllModel::baseband_transfer(cplx s) const {
  return closed_loop(0, s);
}

cplx SamplingPllModel::lti_baseband_transfer(cplx s) const {
  const cplx a = a_(s);
  return a / (1.0 + a);
}

cplx SamplingPllModel::baseband_error_transfer(cplx s) const {
  return 1.0 - baseband_transfer(s);
}

CVector SamplingPllModel::lambda_grid(const CVector& s_grid) const {
  return lambda_grid(s_grid, opts_.lambda_method, opts_.truncation);
}

CVector SamplingPllModel::lambda_grid(const CVector& s_grid,
                                      LambdaMethod method,
                                      int truncation) const {
  HTMPLL_TRACE_SPAN("core.lambda_grid");
  if (plan_ && plan_->supports(method)) {
    return plan_->lambda_grid(s_grid, method, truncation);
  }
  CVector out(s_grid.size());
  ThreadPool::global().for_each_index(s_grid.size(), [&](std::size_t i) {
    if (method == LambdaMethod::kTruncated) {
      ShiftedGainCache cache(*this, s_grid[i],
                             truncation + isf_.max_harmonic());
      out[i] = lambda_truncated_impl(s_grid[i], truncation, &cache);
    } else {
      out[i] = lambda(s_grid[i], method, truncation);
    }
  });
  return out;
}

CVector SamplingPllModel::baseband_transfer_grid(const CVector& s_grid) const {
  HTMPLL_TRACE_SPAN("core.baseband_transfer_grid");
  const LambdaMethod method = opts_.lambda_method;
  const int truncation = opts_.truncation;
  if (plan_ && plan_->supports(method)) {
    std::vector<CVector> rows =
        plan_->closed_loop_grid({0}, s_grid, method, truncation);
    return std::move(rows[0]);
  }
  CVector out(s_grid.size());
  ThreadPool::global().for_each_index(s_grid.size(), [&](std::size_t i) {
    const cplx s = s_grid[i];
    if (method == LambdaMethod::kTruncated && !isf_.is_dc_only()) {
      // One gain table serves the V~_0 numerator and all 2K+1 terms of
      // the truncated lambda sum.  With a DC-only ISF the two share a
      // single gain, so the table costs more than it saves -- use the
      // scalar path (same arithmetic either way).
      ShiftedGainCache cache(*this, s, truncation + isf_.max_harmonic());
      const cplx v0 = vtilde_element_impl(0, s, &cache);
      out[i] = v0 / (1.0 + lambda_truncated_impl(s, truncation, &cache));
    } else {
      out[i] = vtilde_element(0, s) / (1.0 + lambda(s, method, truncation));
    }
  });
  return out;
}

CVector SamplingPllModel::lti_baseband_transfer_grid(
    const CVector& s_grid) const {
  CVector out(s_grid.size());
  ThreadPool::global().for_each_index(s_grid.size(), [&](std::size_t i) {
    out[i] = lti_baseband_transfer(s_grid[i]);
  });
  return out;
}

CVector SamplingPllModel::baseband_error_transfer_grid(
    const CVector& s_grid) const {
  CVector h = baseband_transfer_grid(s_grid);
  for (cplx& x : h) x = 1.0 - x;
  return h;
}

std::vector<CVector> SamplingPllModel::closed_loop_grid(
    const std::vector<int>& bands, const CVector& s_grid) const {
  HTMPLL_TRACE_SPAN("core.closed_loop_grid");
  const LambdaMethod method = opts_.lambda_method;
  const int truncation = opts_.truncation;
  if (plan_ && plan_->supports(method)) {
    return plan_->closed_loop_grid(bands, s_grid, method, truncation);
  }
  int band_max = 0;
  for (int n : bands) band_max = std::max(band_max, std::abs(n));
  const int table_span =
      std::max(band_max,
               method == LambdaMethod::kTruncated ? truncation : 0) +
      isf_.max_harmonic();

  std::vector<CVector> out(bands.size(), CVector(s_grid.size()));
  ThreadPool::global().for_each_index(s_grid.size(), [&](std::size_t i) {
    const cplx s = s_grid[i];
    // The shifted gains overlap between bands (offsets n - k), so one
    // lazily filled table serves every band and the truncated lambda.
    ShiftedGainCache cache(*this, s, table_span);
    const cplx lam = method == LambdaMethod::kTruncated
                         ? lambda_truncated_impl(s, truncation, &cache)
                         : lambda(s, method, truncation);
    const cplx denom = 1.0 + lam;
    for (std::size_t b = 0; b < bands.size(); ++b) {
      out[b][i] = vtilde_element_impl(bands[b], s, &cache) / denom;
    }
  });
  return out;
}

Htm SamplingPllModel::open_loop_htm(cplx s, int truncation) const {
  CVector v(2 * static_cast<std::size_t>(isf_.max_harmonic()) + 1);
  for (int k = -isf_.max_harmonic(); k <= isf_.max_harmonic(); ++k) {
    v[static_cast<std::size_t>(k + isf_.max_harmonic())] =
        params_.kvco * isf_[k];
  }
  const HarmonicCoefficients scaled_isf{CVector(v)};
  const Htm h_vco = vco_htm(scaled_isf, truncation, params_.w0, s);
  const Htm h_lf = lti_htm(hlf_, truncation, params_.w0, s);
  const Htm h_pfd = sampling_pfd_htm(truncation, params_.w0, s);
  if (opts_.pfd_shape == PfdShape::kImpulse) {
    return h_vco * h_lf * h_pfd;  // eq. 27
  }
  // Generalized PFD: the hold shape is a (diagonal) LTI block between
  // the sampler and the loop filter.
  const cplx pre = shape_prefactor(s);
  const Htm h_shape = lti_htm(
      [this, pre](cplx sigma) { return pre * shape_factor(sigma); },
      truncation, params_.w0, s);
  return h_vco * h_lf * h_shape * h_pfd;
}

Htm SamplingPllModel::closed_loop_htm(cplx s, int truncation) const {
  // V~ computed directly (eq. 29) with the same column truncation as the
  // finite HTM product, so the rank-one form matches
  // closed_loop_htm_dense exactly -- but in O(K) instead of assembling
  // the O(K^3) matrix product.
  const Htm proto(truncation, params_.w0, s);
  const double front = params_.w0 / (2.0 * std::numbers::pi);
  CVector v(proto.dim());
  for (int n = -truncation; n <= truncation; ++n) {
    const cplx sn = s + cplx{0.0, static_cast<double>(n) * params_.w0};
    HTMPLL_REQUIRE(std::abs(sn) > 0.0,
                   "closed_loop_htm evaluated on an integrator pole");
    cplx acc{0.0};
    for (const HarmonicChannel& ch : channels_) {
      const int m = n - ch.k;
      if (m < -truncation || m > truncation) continue;  // HTM truncation
      const cplx sm = s + cplx{0.0, static_cast<double>(m) * params_.w0};
      acc += ch.v_k * hlf_(sm) * shape_factor(sm);
    }
    v[proto.index(n)] = shape_prefactor(s) * front * acc / sn;
  }
  return closed_loop_rank_one(v, proto);
}

Htm SamplingPllModel::closed_loop_htm_dense(cplx s, int truncation) const {
  return closed_loop_dense(open_loop_htm(s, truncation));
}

}  // namespace htmpll

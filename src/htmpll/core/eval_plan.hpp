// Compiled evaluation plans for SamplingPllModel grid sweeps.
//
// The scalar model walks one frequency point at a time: per point it
// re-derives the partial-fraction structure of every ISF harmonic
// channel, calls std::exp once per pole term (plus once for the ZOH
// prefactor), and evaluates the shifted loop-filter gains through the
// generic RationalFunction recursion.  None of that structure depends
// on the evaluation point -- it is fixed the moment the model is
// constructed.
//
// An EvalPlan flattens that fixed structure once, at model-construction
// time, into contiguous tables the linalg batch kernels can stream a
// whole grid through:
//  * exact lambda: every channel's pole/residue terms as PoleSumTerm
//    records carrying exp(p T), so one exp(-sT) plane per grid block
//    feeds the coth/csch^2 kernels of EVERY pole (exp(-2u) =
//    exp(-sT) exp(pT) for u = (pi/w0)(s-p)) AND the ZOH shape
//    prefactor 1 - exp(-sT);
//  * truncated lambda / V~ / closed-loop bands: the loop-filter
//    numerator/denominator coefficient vectors plus the (k, v_k) index
//    structure of the nonzero ISF harmonics, evaluated as a
//    shifted-gain table via batched Horner over split re/im planes.
//
// Numerical contract: every plan result agrees with its scalar
// counterpart to <= 1e-12 relative error (see tests/test_eval_plan).
// The scalar paths remain in SamplingPllModel as the reference oracle;
// SamplingPllOptions::use_eval_plan = false forces them.
//
// Plans are immutable after build and shared by value-copied models
// (shared_ptr<const EvalPlan>); grid evaluation uses per-thread scratch
// planes, so concurrent sweeps over one plan are safe.
#pragma once

#include <memory>
#include <vector>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/linalg/batch_kernels.hpp"

namespace htmpll {

class EvalPlan {
 public:
  /// Compiles the model's channel structure into batch tables.  Called
  /// by the SamplingPllModel constructor (unless opted out); counts
  /// itself under "core.plan_builds".
  static std::shared_ptr<const EvalPlan> build(const SamplingPllModel& model);

  /// True when the plan can serve grids for `method`.  kTruncated is
  /// always compiled; kExact requires every pole multiplicity <= 4
  /// (otherwise the scalar path is used -- and throws, preserving the
  /// scalar error behavior); kAdaptive keeps its per-point stopping
  /// rule and stays scalar.
  bool supports(LambdaMethod method) const;

  /// True when derivative tables were compiled: the exact method is
  /// usable AND every pole multiplicity is <= 3 (d/ds S_k = -k S_{k+1}
  /// raises each order by one, and S_k is implemented through k = 4).
  bool supports_derivative() const { return deriv_usable_; }

  /// Batched counterparts of the SamplingPllModel grid APIs.  Results
  /// match the scalar evaluations to <= 1e-12 relative error; per-point
  /// domain errors (integrator poles, ZOH on a harmonic of w0) throw
  /// the same assertion messages as the scalar paths.
  CVector lambda_grid(const CVector& s_grid, LambdaMethod method,
                      int truncation) const;
  std::vector<CVector> closed_loop_grid(const std::vector<int>& bands,
                                        const CVector& s_grid,
                                        LambdaMethod method,
                                        int truncation) const;

  /// d lambda / ds of the exact closed form, streamed through the same
  /// block machinery as lambda_grid.  Each pole term differentiates via
  /// a second residue table (d/ds sum_k r_k S_k = sum_k -k r_k S_{k+1},
  /// sharing pole, exp(pT) and the factored/cancellation guards); the
  /// ZOH prefactor adds the product-rule term T exp(-sT) * acc from the
  /// shared exp plane.  Requires supports_derivative(); agrees with the
  /// scalar SamplingPllModel::lambda_derivative to <= 1e-12 relative.
  CVector lambda_derivative_grid(const CVector& s_grid) const;

  /// V~_{-K..K}(s) with the harmonic offsets themselves as the SoA
  /// "grid": one batched rational pass over the 2(K+h)+1 shifted points
  /// replaces 2K+1 scalar gain evaluations.
  CVector vtilde(cplx s, int truncation) const;

 private:
  EvalPlan() = default;

  /// One nonzero ISF harmonic: V~_n sums v * gain(s + j (n - k) w0).
  struct ChannelWeight {
    int k;
    cplx v;
  };

  struct Scratch;
  static Scratch& thread_scratch();

  /// Splits a block into planes and (when `need_exp`) computes the
  /// shared exp(-sT) plane.
  void load_block(const cplx* s, std::size_t n, bool need_exp,
                  Scratch& sc) const;
  /// Exact lambda over a loaded block (requires the exp plane).
  void exact_lambda_block(std::size_t n, Scratch& sc) const;
  /// Shifted-gain table for offsets |m| <= mspan over a loaded block.
  void gains_block(std::size_t n, int mspan, Scratch& sc) const;
  /// ZOH prefactor plane (1 - exp(-sT)), or all-ones for impulse.
  void prefactor_block(std::size_t n, Scratch& sc) const;
  /// V~_band at point i of the loaded block, from the gain table.
  cplx vtilde_from_gains(const Scratch& sc, std::size_t n, int mspan,
                         std::size_t i, int band, cplx pre) const;

  double w0_ = 0.0;
  double t_ = 0.0;      ///< T = 2 pi / w0
  double c_ = 0.0;      ///< pi / w0
  double front_ = 0.0;  ///< w0 / (2 pi)
  PfdShape shape_ = PfdShape::kImpulse;

  // Exact-method tables (empty when !exact_usable_).
  bool exact_usable_ = false;
  std::vector<PoleSumTerm> exact_terms_;
  // Differentiated twins of exact_terms_ (empty when !deriv_usable_):
  // same pole / exp(pT) / factored flag, residue table shifted one
  // order up with -k scaling.
  bool deriv_usable_ = false;
  std::vector<PoleSumTerm> deriv_terms_;

  // Truncated / V~ structure.
  std::vector<ChannelWeight> channels_;
  int hmax_ = 0;  ///< max |k| over nonzero ISF harmonics
  CVector hlf_num_, hlf_den_;  ///< H_LF coefficients (ascending)
};

}  // namespace htmpll

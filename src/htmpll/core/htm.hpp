// Truncated harmonic transfer matrices (HTMs).
//
// An LPTV system with period T = 2pi/w0 maps the stacked signal vector
// U~(s) = [... U(s-jw0), U(s), U(s+jw0) ...]^T to Y~(s) = H(s) U~(s)
// (eqs. 4-6).  Element H_{n,m}(s) carries signal content from the band
// around m*w0 at the input to the band around n*w0 at the output (Fig. 2).
//
// This class is an HTM *evaluated at one complex frequency s*, truncated
// to harmonics |n| <= K: a (2K+1)x(2K+1) complex matrix plus the (K, w0,
// s) metadata needed to compose blocks safely.  Series composition is
// matrix multiplication in operator order (eq. 11), parallel composition
// is addition (eq. 10).
#pragma once

#include "htmpll/linalg/lu.hpp"
#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

class Htm {
 public:
  /// Zero HTM with harmonics |n| <= K at evaluation point s.
  Htm(int truncation, double w0, cplx s);

  static Htm identity(int truncation, double w0, cplx s);

  int truncation() const { return k_; }
  std::size_t dim() const { return 2 * static_cast<std::size_t>(k_) + 1; }
  double w0() const { return w0_; }
  cplx s() const { return s_; }

  /// Harmonic-indexed access, n, m in [-K, K].
  cplx& at(int n, int m);
  cplx at(int n, int m) const;

  const CMatrix& matrix() const { return m_; }
  CMatrix& matrix() { return m_; }

  /// Row/column index of harmonic n.
  std::size_t index(int n) const;

  /// Parallel connection (eq. 10).
  Htm& operator+=(const Htm& o);
  friend Htm operator+(Htm a, const Htm& b) {
    a += b;
    return a;
  }
  Htm& operator-=(const Htm& o);
  friend Htm operator-(Htm a, const Htm& b) {
    a -= b;
    return a;
  }

  /// Series connection y = b[a[u]] is b * a (eq. 11).
  friend Htm operator*(const Htm& b, const Htm& a);

  friend Htm operator*(cplx scale, Htm h) {
    h.m_ *= scale;
    return h;
  }

  /// Apply to a stacked harmonic signal vector (length 2K+1).
  CVector apply(const CVector& u) const;

  /// The all-ones vector l of eq. 20 (length 2K+1).
  CVector ones() const;

  /// Checks (K, w0, s) compatibility with another HTM.
  void require_compatible(const Htm& o, const char* op) const;

  /// Largest |H_{n,m}| over the matrix.
  double max_abs() const { return m_.max_abs(); }

 private:
  int k_;
  double w0_;
  cplx s_;
  CMatrix m_;
};

/// Dense closed-loop solve (I + G)^{-1} * G by LU; the reference
/// implementation the rank-one closed form (eqs. 31-34) is checked
/// against.
Htm closed_loop_dense(const Htm& g);

/// Cached-LU resolve path for the dense reference solve: factors
/// (I + G) once at one evaluation point and reuses the factorization
/// for the closed-loop HTM and any number of additional right-hand
/// sides (injection vectors, per-band columns), instead of refactoring
/// per solve.
class ClosedLoopSolver {
 public:
  explicit ClosedLoopSolver(const Htm& g);

  int truncation() const { return k_; }
  double w0() const { return w0_; }
  cplx s() const { return s_; }

  /// (I + G)^{-1} G, computed once through the cached factors.
  const Htm& closed_loop() const { return closed_; }

  /// (I + G)^{-1} rhs for an arbitrary stacked harmonic vector.
  CVector solve(CVector rhs) const { return lu_.solve(std::move(rhs)); }

  /// (I + G)^{-1} B for a block of right-hand sides (transposed-RHS
  /// kernel underneath).
  CMatrix solve(const CMatrix& rhs) const { return lu_.solve(rhs); }

 private:
  int k_;
  double w0_;
  cplx s_;
  CLu lu_;     ///< factors of (I + G)
  Htm closed_;
};

/// Sherman-Morrison closed form for rank-one G = v * l^T (eq. 32-34):
/// returns (I + v l^T)^{-1} (v l^T) = v l^T / (1 + l^T v).
Htm closed_loop_rank_one(const CVector& v, const Htm& prototype);

}  // namespace htmpll

#include "htmpll/core/htm.hpp"

#include <cmath>

#include "htmpll/linalg/lu.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

Htm::Htm(int truncation, double w0, cplx s)
    : k_(truncation), w0_(w0), s_(s), m_(dim(), dim()) {
  HTMPLL_REQUIRE(truncation >= 0, "HTM truncation must be non-negative");
  HTMPLL_REQUIRE(w0 > 0.0, "HTM fundamental frequency must be positive");
}

Htm Htm::identity(int truncation, double w0, cplx s) {
  Htm h(truncation, w0, s);
  h.m_ = CMatrix::identity(h.dim());
  return h;
}

std::size_t Htm::index(int n) const {
  HTMPLL_REQUIRE(n >= -k_ && n <= k_, "harmonic index outside truncation");
  return static_cast<std::size_t>(n + k_);
}

cplx& Htm::at(int n, int m) { return m_(index(n), index(m)); }
cplx Htm::at(int n, int m) const { return m_(index(n), index(m)); }

void Htm::require_compatible(const Htm& o, const char* op) const {
  HTMPLL_REQUIRE(k_ == o.k_, std::string("HTM truncation mismatch in ") + op);
  HTMPLL_REQUIRE(w0_ == o.w0_,
                 std::string("HTM fundamental mismatch in ") + op);
  HTMPLL_REQUIRE(s_ == o.s_,
                 std::string("HTM evaluation-point mismatch in ") + op);
}

Htm& Htm::operator+=(const Htm& o) {
  require_compatible(o, "operator+=");
  m_ += o.m_;
  return *this;
}

Htm& Htm::operator-=(const Htm& o) {
  require_compatible(o, "operator-=");
  m_ -= o.m_;
  return *this;
}

Htm operator*(const Htm& b, const Htm& a) {
  b.require_compatible(a, "operator*");
  Htm out(b.k_, b.w0_, b.s_);
  out.m_ = b.m_ * a.m_;
  return out;
}

CVector Htm::apply(const CVector& u) const {
  HTMPLL_REQUIRE(u.size() == dim(), "harmonic vector length mismatch");
  return m_ * u;
}

CVector Htm::ones() const { return CVector(dim(), cplx{1.0}); }

ClosedLoopSolver::ClosedLoopSolver(const Htm& g)
    : k_(g.truncation()),
      w0_(g.w0()),
      s_(g.s()),
      lu_(CMatrix::identity(g.dim()) + g.matrix()),
      closed_(k_, w0_, s_) {
  closed_.matrix() = lu_.solve(g.matrix());
}

Htm closed_loop_dense(const Htm& g) {
  return ClosedLoopSolver(g).closed_loop();
}

Htm closed_loop_rank_one(const CVector& v, const Htm& prototype) {
  HTMPLL_REQUIRE(v.size() == prototype.dim(),
                 "rank-one vector length mismatch");
  // lambda = l^T v; closed loop = v l^T / (1 + lambda)  (eq. 34).
  cplx lambda{0.0};
  for (const cplx& x : v) lambda += x;
  const cplx denom = 1.0 + lambda;
  HTMPLL_REQUIRE(std::abs(denom) > 0.0,
                 "closed loop singular: 1 + lambda(s) == 0");
  Htm out(prototype.truncation(), prototype.w0(), prototype.s());
  for (std::size_t i = 0; i < v.size(); ++i) {
    const cplx value = v[i] / denom;
    for (std::size_t j = 0; j < v.size(); ++j) out.matrix()(i, j) = value;
  }
  return out;
}

}  // namespace htmpll

#include "htmpll/core/eval_plan.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// Grid points per chunk: large enough to amortize kernel setup and the
/// split/join passes, small enough that one block's scratch planes
/// (including the shifted-gain table) stay cache-resident.
constexpr std::size_t kBlock = 256;

obs::Counter& plan_points_counter() {
  static obs::Counter& ctr = obs::counter("core.plan_grid_points");
  return ctr;
}

}  // namespace

/// Per-thread workspace for one block of grid points.  All planes are
/// caller-sized per block; capacity persists across blocks and sweeps,
/// so the steady state performs no heap allocation.  thread_local
/// storage keeps concurrent sweeps (and pool workers) disjoint.
struct EvalPlan::Scratch {
  // Split planes of the current block.
  std::vector<double> s_re, s_im;
  // Argument and value planes of the shared exp(-sT) pass.
  std::vector<double> arg_re, arg_im, e_re, e_im;
  // Pole-sum accumulators (exact lambda) and their derivative twins.
  std::vector<double> acc_re, acc_im, dacc_re, dacc_im;
  // Rational-evaluation temporaries (denominator planes, shifted
  // imaginary plane).
  std::vector<double> den_re, den_im, im_shift;
  // Shifted-gain table, planes laid out [(m + mspan) * n + i].
  std::vector<double> g_re, g_im;
  // Per-point lambda and PFD-shape prefactor of the block.
  std::vector<cplx> lam, pre;

  void resize_point_planes(std::size_t n) {
    s_re.resize(n);
    s_im.resize(n);
    arg_re.resize(n);
    arg_im.resize(n);
    e_re.resize(n);
    e_im.resize(n);
    acc_re.resize(n);
    acc_im.resize(n);
    dacc_re.resize(n);
    dacc_im.resize(n);
    den_re.resize(n);
    den_im.resize(n);
    im_shift.resize(n);
    lam.resize(n);
    pre.resize(n);
  }
};

EvalPlan::Scratch& EvalPlan::thread_scratch() {
  thread_local Scratch sc;
  return sc;
}

std::shared_ptr<const EvalPlan> EvalPlan::build(
    const SamplingPllModel& model) {
  HTMPLL_TRACE_SPAN("core.plan_build");
  std::shared_ptr<EvalPlan> plan(new EvalPlan());
  plan->w0_ = model.params_.w0;
  plan->t_ = model.params_.period();
  plan->c_ = std::numbers::pi / plan->w0_;
  plan->front_ = plan->w0_ / (2.0 * std::numbers::pi);
  plan->shape_ = model.opts_.pfd_shape;
  plan->hlf_num_ = model.hlf_.num().coefficients();
  plan->hlf_den_ = model.hlf_.den().coefficients();

  for (const auto& ch : model.channels_) {
    plan->channels_.push_back(ChannelWeight{ch.k, ch.v_k});
    plan->hmax_ = std::max(plan->hmax_, std::abs(ch.k));
  }

  // Flatten the exact closed form: every channel's partial-fraction
  // pole terms, in the scalar evaluation order (channels outer, terms
  // inner), each carrying exp(p T) for the shared-exponential
  // factorization exp(-2u) = exp(-sT) exp(pT).
  plan->exact_usable_ = true;
  for (const auto& ch : model.channels_) {
    for (const PoleTerm& term : ch.sum.partial_fractions().terms()) {
      if (term.residues.size() > 4 || term.residues.empty()) {
        // The scalar exact path rejects multiplicity > 4 with a
        // REQUIRE; leaving the plan unusable routes grid calls back to
        // that path so the error behavior is unchanged.
        plan->exact_usable_ = false;
        break;
      }
      PoleSumTerm t;
      t.pole = term.pole;
      t.kmax = static_cast<int>(term.residues.size());
      for (std::size_t j = 0; j < term.residues.size(); ++j) {
        t.residues[j] = term.residues[j];
      }
      const cplx ept = std::exp(term.pole * plan->t_);
      const double mag = std::abs(ept);
      t.exp_pole_t = ept;
      // Factoring through exp(pT) is only sound while that factor is a
      // normal number; otherwise every point recomputes exp(-2u)
      // directly (still exact, just without the shared plane).
      t.factored = std::isfinite(ept.real()) && std::isfinite(ept.imag()) &&
                   mag > 1e-250 && mag < 1e250;
      if (!t.factored) {
        obs::diag_event(obs::DiagReason::kPlanExpOverflowFallback, mag);
      }
      plan->exact_terms_.push_back(t);
    }
    if (!plan->exact_usable_) break;
  }
  if (!plan->exact_usable_) {
    obs::diag_event(obs::DiagReason::kPlanScalarFallback,
                    static_cast<double>(plan->exact_terms_.size()));
    plan->exact_terms_.clear();
  }

  // Derivative tables: d/ds sum_k r_k S_k(c(s-p)) = sum_k -k r_k
  // S_{k+1}(c(s-p)), so every exact term differentiates to a second
  // PoleSumTerm with the same pole / exp(pT) / factored flag and the
  // residue table shifted one order up.  Requires headroom for the
  // order bump: multiplicity <= 3.
  plan->deriv_usable_ = plan->exact_usable_;
  for (const PoleSumTerm& t : plan->exact_terms_) {
    if (t.kmax > 3) {
      plan->deriv_usable_ = false;
      break;
    }
    PoleSumTerm d = t;
    d.kmax = t.kmax + 1;
    d.residues[0] = cplx{0.0};
    for (int k = 1; k <= t.kmax; ++k) {
      d.residues[k] = -static_cast<double>(k) * t.residues[k - 1];
    }
    plan->deriv_terms_.push_back(d);
  }
  if (!plan->deriv_usable_) plan->deriv_terms_.clear();

  obs::counter("core.plan_builds").add();
  return plan;
}

bool EvalPlan::supports(LambdaMethod method) const {
  switch (method) {
    case LambdaMethod::kExact:
      return exact_usable_;
    case LambdaMethod::kTruncated:
      return true;
    case LambdaMethod::kAdaptive:
      return false;  // per-point stopping rule stays scalar
  }
  return false;
}

void EvalPlan::load_block(const cplx* s, std::size_t n, bool need_exp,
                          Scratch& sc) const {
  sc.resize_point_planes(n);
  split_planes(s, n, sc.s_re.data(), sc.s_im.data());
  if (!need_exp) return;
  for (std::size_t i = 0; i < n; ++i) {
    sc.arg_re[i] = -t_ * sc.s_re[i];
    sc.arg_im[i] = -t_ * sc.s_im[i];
  }
  batch_cexp(sc.arg_re.data(), sc.arg_im.data(), n, sc.e_re.data(),
             sc.e_im.data());
}

void EvalPlan::prefactor_block(std::size_t n, Scratch& sc) const {
  if (shape_ == PfdShape::kImpulse) {
    std::fill_n(sc.pre.data(), n, cplx{1.0});
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sc.pre[i] = 1.0 - cplx{sc.e_re[i], sc.e_im[i]};
  }
}

void EvalPlan::exact_lambda_block(std::size_t n, Scratch& sc) const {
  std::fill_n(sc.acc_re.data(), n, 0.0);
  std::fill_n(sc.acc_im.data(), n, 0.0);
  for (const PoleSumTerm& term : exact_terms_) {
    accumulate_pole_sums(term, c_, sc.s_re.data(), sc.s_im.data(),
                         sc.e_re.data(), sc.e_im.data(), n,
                         sc.acc_re.data(), sc.acc_im.data());
  }
  for (std::size_t i = 0; i < n; ++i) {
    sc.lam[i] = sc.pre[i] * cplx{sc.acc_re[i], sc.acc_im[i]};
  }
}

void EvalPlan::gains_block(std::size_t n, int mspan, Scratch& sc) const {
  const std::size_t planes = 2 * static_cast<std::size_t>(mspan) + 1;
  sc.g_re.resize(planes * n);
  sc.g_im.resize(planes * n);
  for (int m = -mspan; m <= mspan; ++m) {
    double* gr = sc.g_re.data() + static_cast<std::size_t>(m + mspan) * n;
    double* gi = sc.g_im.data() + static_cast<std::size_t>(m + mspan) * n;
    const double shift = static_cast<double>(m) * w0_;
    for (std::size_t i = 0; i < n; ++i) {
      sc.im_shift[i] = sc.s_im[i] + shift;
    }
    batch_rational(hlf_num_.data(), hlf_num_.size(), hlf_den_.data(),
                   hlf_den_.size(), sc.s_re.data(), sc.im_shift.data(), n,
                   gr, gi, sc.den_re.data(), sc.den_im.data());
    if (shape_ == PfdShape::kZeroOrderHold) {
      for (std::size_t i = 0; i < n; ++i) {
        const cplx sm{sc.s_re[i], sc.im_shift[i]};
        HTMPLL_REQUIRE(std::abs(sm) > 0.0,
                       "ZOH shape evaluated on a harmonic of w0; evaluate "
                       "off the harmonic grid");
        const cplx q = cplx{gr[i], gi[i]} / (sm * t_);
        gr[i] = q.real();
        gi[i] = q.imag();
      }
    }
  }
}

cplx EvalPlan::vtilde_from_gains(const Scratch& sc, std::size_t n,
                                 int mspan, std::size_t i, int band,
                                 cplx pre) const {
  cplx acc{0.0};
  for (const ChannelWeight& ch : channels_) {
    const int m = band - ch.k;  // |m| <= mspan by table construction
    const std::size_t base = static_cast<std::size_t>(m + mspan) * n;
    acc += ch.v * cplx{sc.g_re[base + i], sc.g_im[base + i]};
  }
  const cplx sn{sc.s_re[i],
                sc.s_im[i] + static_cast<double>(band) * w0_};
  HTMPLL_REQUIRE(std::abs(sn) > 0.0,
                 "V~ evaluated on an integrator pole s = -j n w0");
  return pre * acc * front_ / sn;
}

CVector EvalPlan::lambda_grid(const CVector& s_grid, LambdaMethod method,
                              int truncation) const {
  HTMPLL_ASSERT(supports(method));
  HTMPLL_TRACE_SPAN("core.plan_grid");
  plan_points_counter().add(s_grid.size());
  const bool exact = method == LambdaMethod::kExact;
  const bool need_exp = exact || shape_ == PfdShape::kZeroOrderHold;
  CVector out(s_grid.size());
  ThreadPool::global().for_each_chunk(
      s_grid.size(), kBlock, [&](std::size_t b, std::size_t e) {
        Scratch& sc = thread_scratch();
        const std::size_t n = e - b;
        load_block(s_grid.data() + b, n, need_exp, sc);
        prefactor_block(n, sc);
        if (exact) {
          exact_lambda_block(n, sc);
        } else {
          gains_block(n, truncation + hmax_, sc);
          const int mspan = truncation + hmax_;
          std::fill_n(sc.lam.data(), n, cplx{0.0});
          for (int band = -truncation; band <= truncation; ++band) {
            for (std::size_t i = 0; i < n; ++i) {
              sc.lam[i] +=
                  vtilde_from_gains(sc, n, mspan, i, band, sc.pre[i]);
            }
          }
        }
        std::copy_n(sc.lam.data(), n, out.data() + b);
      });
  return out;
}

CVector EvalPlan::lambda_derivative_grid(const CVector& s_grid) const {
  HTMPLL_ASSERT(supports_derivative());
  HTMPLL_TRACE_SPAN("core.plan_grid");
  plan_points_counter().add(s_grid.size());
  const bool zoh = shape_ == PfdShape::kZeroOrderHold;
  CVector out(s_grid.size());
  ThreadPool::global().for_each_chunk(
      s_grid.size(), kBlock, [&](std::size_t b, std::size_t e) {
        Scratch& sc = thread_scratch();
        const std::size_t n = e - b;
        load_block(s_grid.data() + b, n, /*need_exp=*/true, sc);
        std::fill_n(sc.dacc_re.data(), n, 0.0);
        std::fill_n(sc.dacc_im.data(), n, 0.0);
        for (const PoleSumTerm& term : deriv_terms_) {
          accumulate_pole_sums(term, c_, sc.s_re.data(), sc.s_im.data(),
                               sc.e_re.data(), sc.e_im.data(), n,
                               sc.dacc_re.data(), sc.dacc_im.data());
        }
        if (!zoh) {
          for (std::size_t i = 0; i < n; ++i) {
            out[b + i] = cplx{sc.dacc_re[i], sc.dacc_im[i]};
          }
          return;
        }
        // Product rule: lambda = (1 - e^{-sT}) acc, so
        // lambda' = T e^{-sT} acc + (1 - e^{-sT}) acc'.
        std::fill_n(sc.acc_re.data(), n, 0.0);
        std::fill_n(sc.acc_im.data(), n, 0.0);
        for (const PoleSumTerm& term : exact_terms_) {
          accumulate_pole_sums(term, c_, sc.s_re.data(), sc.s_im.data(),
                               sc.e_re.data(), sc.e_im.data(), n,
                               sc.acc_re.data(), sc.acc_im.data());
        }
        prefactor_block(n, sc);
        for (std::size_t i = 0; i < n; ++i) {
          const cplx es{sc.e_re[i], sc.e_im[i]};
          const cplx acc{sc.acc_re[i], sc.acc_im[i]};
          const cplx dacc{sc.dacc_re[i], sc.dacc_im[i]};
          out[b + i] = t_ * es * acc + sc.pre[i] * dacc;
        }
      });
  return out;
}

std::vector<CVector> EvalPlan::closed_loop_grid(
    const std::vector<int>& bands, const CVector& s_grid,
    LambdaMethod method, int truncation) const {
  HTMPLL_ASSERT(supports(method));
  HTMPLL_TRACE_SPAN("core.plan_grid");
  plan_points_counter().add(s_grid.size());
  const bool exact = method == LambdaMethod::kExact;
  const bool need_exp = exact || shape_ == PfdShape::kZeroOrderHold;
  int band_max = 0;
  for (int band : bands) band_max = std::max(band_max, std::abs(band));
  const int mspan =
      std::max(band_max, exact ? 0 : truncation) + hmax_;
  std::vector<CVector> out(bands.size(), CVector(s_grid.size()));
  ThreadPool::global().for_each_chunk(
      s_grid.size(), kBlock, [&](std::size_t b, std::size_t e) {
        Scratch& sc = thread_scratch();
        const std::size_t n = e - b;
        load_block(s_grid.data() + b, n, need_exp, sc);
        prefactor_block(n, sc);
        gains_block(n, mspan, sc);
        if (exact) {
          exact_lambda_block(n, sc);
        } else {
          std::fill_n(sc.lam.data(), n, cplx{0.0});
          for (int band = -truncation; band <= truncation; ++band) {
            for (std::size_t i = 0; i < n; ++i) {
              sc.lam[i] +=
                  vtilde_from_gains(sc, n, mspan, i, band, sc.pre[i]);
            }
          }
        }
        for (std::size_t bi = 0; bi < bands.size(); ++bi) {
          for (std::size_t i = 0; i < n; ++i) {
            out[bi][b + i] =
                vtilde_from_gains(sc, n, mspan, i, bands[bi], sc.pre[i]) /
                (1.0 + sc.lam[i]);
          }
        }
      });
  return out;
}

CVector EvalPlan::vtilde(cplx s, int truncation) const {
  HTMPLL_TRACE_SPAN("core.plan_grid");
  plan_points_counter().add(1);
  // The harmonic offsets are the SoA grid: slot j holds the shifted
  // point s + j (j - mspan) w0, so ONE batched rational pass evaluates
  // every gain the 2K+1 components need.
  const int mspan = truncation + hmax_;
  const std::size_t n = 2 * static_cast<std::size_t>(mspan) + 1;
  Scratch& sc = thread_scratch();
  sc.resize_point_planes(n);
  for (std::size_t j = 0; j < n; ++j) {
    sc.s_re[j] = s.real();
    sc.s_im[j] = s.imag() +
                 static_cast<double>(static_cast<int>(j) - mspan) * w0_;
  }
  sc.g_re.resize(n);
  sc.g_im.resize(n);
  batch_rational(hlf_num_.data(), hlf_num_.size(), hlf_den_.data(),
                 hlf_den_.size(), sc.s_re.data(), sc.s_im.data(), n,
                 sc.g_re.data(), sc.g_im.data(), sc.den_re.data(),
                 sc.den_im.data());
  if (shape_ == PfdShape::kZeroOrderHold) {
    for (std::size_t j = 0; j < n; ++j) {
      const cplx sm{sc.s_re[j], sc.s_im[j]};
      HTMPLL_REQUIRE(std::abs(sm) > 0.0,
                     "ZOH shape evaluated on a harmonic of w0; evaluate "
                     "off the harmonic grid");
      const cplx q = cplx{sc.g_re[j], sc.g_im[j]} / (sm * t_);
      sc.g_re[j] = q.real();
      sc.g_im[j] = q.imag();
    }
  }
  const cplx pre =
      shape_ == PfdShape::kZeroOrderHold ? 1.0 - std::exp(-s * t_)
                                         : cplx{1.0};
  CVector v(2 * static_cast<std::size_t>(truncation) + 1);
  for (int band = -truncation; band <= truncation; ++band) {
    cplx acc{0.0};
    for (const ChannelWeight& ch : channels_) {
      const std::size_t j = static_cast<std::size_t>(band - ch.k + mspan);
      acc += ch.v * cplx{sc.g_re[j], sc.g_im[j]};
    }
    const cplx sn = s + cplx{0.0, static_cast<double>(band) * w0_};
    HTMPLL_REQUIRE(std::abs(sn) > 0.0,
                   "V~ evaluated on an integrator pole s = -j n w0");
    v[static_cast<std::size_t>(band + truncation)] =
        pre * acc * front_ / sn;
  }
  return v;
}

}  // namespace htmpll

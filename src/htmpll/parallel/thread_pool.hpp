// Fixed-size thread pool with a chunked, deterministic parallel_for.
//
// Every frequency-grid deliverable in this repo (Fig. 5/6/7 sweeps, spur
// maps, pole trajectories, jitter integrals, simulation mark batches) is
// an embarrassingly parallel map over independent evaluation points.
// This pool serves all of them with one set of long-lived workers.
//
// Determinism guarantee: parallel_for partitions [0, n) into fixed
// chunks whose boundaries depend only on n and the grain size -- never
// on the thread count or on scheduling.  Each index is visited exactly
// once and writes only its own output slot, so results are bit-identical
// for any pool size, including the inline single-threaded path.  There
// is no cross-point reduction inside the pool, hence no floating-point
// reassociation.
//
// The worker count of the shared pool is HTMPLL_THREADS when set to a
// valid positive integer (clamped to 256 with a warning above that);
// non-numeric, zero or negative values are rejected with a warning on
// stderr and fall back to std::thread::hardware_concurrency().  The
// resolved width is surfaced as the obs gauge "parallel.pool_width".
// HTMPLL_THREADS=1 runs every parallel_for inline on the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace htmpll {

/// Worker count for the shared pool: HTMPLL_THREADS if set and valid
/// (1..256; larger values clamp to 256 with a warning), else hardware
/// concurrency (at least 1).  Invalid values -- non-numeric text, zero,
/// negatives -- print a warning to stderr and use the fallback instead
/// of silently misconfiguring the pool.
std::size_t configured_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller of parallel_for always
  /// participates, so `threads == 1` means no worker threads at all.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n) exactly once, chunked by `grain`
  /// indices per task.  Chunk boundaries depend only on (n, grain).
  /// Blocks until all indices completed.  The first exception thrown by
  /// any fn(i) is rethrown here (remaining chunks are skipped).
  /// Nested calls from inside a worker run inline.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// parallel_for with an automatic grain (targets ~8 chunks per thread).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized by configured_thread_count(), created on
  /// first use.
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Claims and runs chunks of the current job; records the first error.
  void run_chunks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  ///< bumped per job (guarded by mu_)
  std::size_t busy_workers_ = 0;  ///< workers still in the current job

  // Current job (written under mu_ before the generation bump).
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;  ///< first failure (guarded by mu_)
};

}  // namespace htmpll

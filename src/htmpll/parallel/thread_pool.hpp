// Fixed-size thread pool with a chunked, deterministic parallel_for.
//
// Every frequency-grid deliverable in this repo (Fig. 5/6/7 sweeps, spur
// maps, pole trajectories, jitter integrals, simulation mark batches) is
// an embarrassingly parallel map over independent evaluation points.
// This pool serves all of them with one set of long-lived workers.
//
// Determinism guarantee: parallel_for partitions [0, n) into fixed
// chunks whose boundaries depend only on n and the grain size -- never
// on the thread count or on scheduling.  Each index is visited exactly
// once and writes only its own output slot, so results are bit-identical
// for any pool size, including the inline single-threaded path.  There
// is no cross-point reduction inside the pool, hence no floating-point
// reassociation.
//
// The worker count of the shared pool is HTMPLL_THREADS when set to a
// valid positive integer (clamped to 256 with a warning above that);
// non-numeric, zero or negative values are rejected with a warning on
// stderr and fall back to std::thread::hardware_concurrency().  The
// resolved width is surfaced as the obs gauge "parallel.pool_width".
// HTMPLL_THREADS=1 runs every parallel_for inline on the calling thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "htmpll/util/check.hpp"

namespace htmpll {

/// Worker count for the shared pool: HTMPLL_THREADS if set and valid
/// (1..256; larger values clamp to 256 with a warning), else hardware
/// concurrency (at least 1).  Invalid values -- non-numeric text, zero,
/// negatives -- print a warning to stderr and use the fallback instead
/// of silently misconfiguring the pool.
std::size_t configured_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller of parallel_for always
  /// participates, so `threads == 1` means no worker threads at all.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread).
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, n) exactly once, chunked by `grain`
  /// indices per task.  Chunk boundaries depend only on (n, grain).
  /// Blocks until all indices completed.  The first exception thrown by
  /// any fn(i) is rethrown here (remaining chunks are skipped).
  /// Nested calls from inside a worker run inline.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

  /// parallel_for with an automatic grain (targets ~8 chunks per thread).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when a (n, grain) job would run inline on the calling thread
  /// with no worker handoff: single-thread pool, job no larger than one
  /// chunk, or a nested call from inside a pool worker.
  bool would_run_inline(std::size_t n, std::size_t grain) const;

  /// Templated parallel_for: identical semantics, but when the job runs
  /// inline (always true on a width-1 pool) `fn` is invoked directly --
  /// no std::function construction, no type-erased call per index, no
  /// chunk bookkeeping -- so a 1-core grid sweep pays exactly the cost
  /// of the plain scalar loop.
  template <class F>
  void for_each_index(std::size_t n, std::size_t grain, F&& fn) {
    HTMPLL_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
    if (n == 0) return;
    if (would_run_inline(n, grain)) {
      note_inline_job(n);
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    const std::function<void(std::size_t)> erased =
        [&fn](std::size_t i) { fn(i); };
    parallel_for(n, grain, erased);
  }

  /// for_each_index with the automatic grain of parallel_for(n, fn).
  template <class F>
  void for_each_index(std::size_t n, F&& fn) {
    const std::size_t grain = auto_grain(n);
    for_each_index(n, grain, static_cast<F&&>(fn));
  }

  /// Chunk-level map: body(begin, end) over a partition of [0, n) into
  /// blocks of `grain` indices (the last block may be short).  This is
  /// the plan-aware entry point: batch kernels want whole contiguous
  /// blocks, not single indices, so per-thread scratch planes stay hot
  /// across one block and SoA inner loops see long runs.  The inline
  /// path walks the same block partition directly (same boundaries, so
  /// identical per-block behavior at every pool width).
  template <class F>
  void for_each_chunk(std::size_t n, std::size_t grain, F&& body) {
    HTMPLL_REQUIRE(grain >= 1, "for_each_chunk grain must be >= 1");
    if (n == 0) return;
    if (would_run_inline(n, grain)) {
      note_inline_job(n);
      for (std::size_t b = 0; b < n; b += grain) {
        body(b, std::min(n, b + grain));
      }
      return;
    }
    const std::size_t n_chunks = (n + grain - 1) / grain;
    const std::function<void(std::size_t)> erased = [&](std::size_t ci) {
      const std::size_t b = ci * grain;
      body(b, std::min(n, b + grain));
    };
    parallel_for(n_chunks, 1, erased);
  }

  /// The grain parallel_for(n, fn) would pick (~8 chunks per thread).
  std::size_t auto_grain(std::size_t n) const {
    return std::max<std::size_t>(1, n / (8 * threads()));
  }

  /// Process-wide pool sized by configured_thread_count(), created on
  /// first use.
  static ThreadPool& global();

 private:
  void worker_loop();
  /// Claims and runs chunks of the current job; records the first error.
  void run_chunks();
  /// Metrics hook for the templated inline paths (counts the job and its
  /// indices like the type-erased inline path does).
  static void note_inline_job(std::size_t n);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  ///< bumped per job (guarded by mu_)
  std::size_t busy_workers_ = 0;  ///< workers still in the current job

  // Current job (written under mu_ before the generation bump).
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;  ///< first failure (guarded by mu_)
};

}  // namespace htmpll

// Frequency-sweep driver on top of the thread pool.
//
// A SweepRunner maps a grid of complex frequencies through any
// cplx(cplx s) evaluator with deterministic output ordering: slot i of
// the result is always evaluator(grid[i]), regardless of thread count.
// Evaluators must be safe to call concurrently from several threads on
// distinct points (every const method of the model layer is).
#pragma once

#include <complex>
#include <functional>
#include <vector>

#include "htmpll/parallel/thread_pool.hpp"

namespace htmpll {

using cplx = std::complex<double>;

/// out[i] = fn(i) for i in [0, n), evaluated on the pool.  Deterministic:
/// each slot is written by exactly the index that owns it.
template <class T, class F>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, F&& fn) {
  std::vector<T> out(n);
  pool.parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Convenience overload on the shared pool.
template <class T, class F>
std::vector<T> parallel_map(std::size_t n, F&& fn) {
  return parallel_map<T>(ThreadPool::global(), n, static_cast<F&&>(fn));
}

/// s = j w for every w of a real frequency grid.
std::vector<cplx> jw_grid(const std::vector<double>& w);

class SweepRunner {
 public:
  /// Uses the shared pool by default; pass a specific pool to control
  /// the width (e.g. a 1-thread pool for a guaranteed-serial baseline).
  explicit SweepRunner(ThreadPool& pool = ThreadPool::global())
      : pool_(&pool) {}

  std::size_t threads() const { return pool_->threads(); }

  /// result[i] = evaluator(s_grid[i]).
  std::vector<cplx> run(const std::vector<cplx>& s_grid,
                        const std::function<cplx(cplx)>& evaluator) const;

  /// result[i] = evaluator(j * w_grid[i]).
  std::vector<cplx> run_jw(const std::vector<double>& w_grid,
                           const std::function<cplx(cplx)>& evaluator) const;

 private:
  ThreadPool* pool_;
};

}  // namespace htmpll

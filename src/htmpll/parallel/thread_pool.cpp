#include "htmpll/parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// True on threads that belong to some pool; nested parallel_for calls
/// from inside a worker run inline instead of deadlocking on the pool.
thread_local bool t_inside_worker = false;

}  // namespace

std::size_t configured_thread_count() {
  if (const char* env = std::getenv("HTMPLL_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(std::min(parsed, 256L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  HTMPLL_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_job_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    run_chunks();
    lock.lock();
    if (--busy_workers_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  const std::size_t n = job_n_;
  const std::size_t grain = job_grain_;
  const std::function<void(std::size_t)>& fn = *job_fn_;
  for (;;) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = chunk * grain;
    if (begin >= n) return;
    if (failed_.load(std::memory_order_relaxed)) return;
    const std::size_t end = std::min(n, begin + grain);
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  HTMPLL_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (n == 0) return;
  if (workers_.empty() || n <= grain || t_inside_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_n_ = n;
    job_grain_ = grain;
    job_fn_ = &fn;
    next_chunk_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  cv_job_.notify_all();
  // Mark the participating caller like a worker for the duration of its
  // chunk processing: a nested parallel_for issued from inside fn would
  // otherwise publish a second job on this pool mid-flight.
  const bool was_inside = t_inside_worker;
  t_inside_worker = true;
  run_chunks();
  t_inside_worker = was_inside;
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return busy_workers_ == 0; });
  job_fn_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  const std::size_t target_chunks = 8 * threads();
  const std::size_t grain = std::max<std::size_t>(1, n / target_chunks);
  parallel_for(n, grain, fn);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_thread_count());
  return pool;
}

}  // namespace htmpll

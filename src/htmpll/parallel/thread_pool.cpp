#include "htmpll/parallel/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// True on threads that belong to some pool; nested parallel_for calls
/// from inside a worker run inline instead of deadlocking on the pool.
thread_local bool t_inside_worker = false;

/// Pool instrumentation.  Jobs/chunks are counted per dispatch (coarse);
/// busy/width nanoseconds let telemetry derive pool utilization as
/// busy_ns / width_ns without assuming a single pool width per process.
struct PoolMetrics {
  obs::Counter& jobs = obs::counter("parallel.pool_jobs");
  obs::Counter& jobs_inline = obs::counter("parallel.pool_jobs_inline");
  obs::Counter& chunks = obs::counter("parallel.pool_chunks");
  obs::Counter& indices = obs::counter("parallel.pool_indices");
  obs::Counter& busy_ns = obs::counter("parallel.pool_busy_ns");
  obs::Counter& width_ns = obs::counter("parallel.pool_width_ns");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

std::size_t configured_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  if (const char* env = std::getenv("HTMPLL_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    const bool numeric = end != env && *end == '\0' && errno == 0;
    if (!numeric) {
      // Garbage ("abc", "4x", "", out-of-range): reject loudly instead
      // of silently misconfiguring the pool.
      std::fprintf(stderr,
                   "htmpll: warning: HTMPLL_THREADS='%s' is not an "
                   "integer; using hardware concurrency (%zu)\n",
                   env, fallback);
      return fallback;
    }
    if (parsed < 1) {
      std::fprintf(stderr,
                   "htmpll: warning: HTMPLL_THREADS=%ld must be >= 1; "
                   "using hardware concurrency (%zu)\n",
                   parsed, fallback);
      return fallback;
    }
    if (parsed > 256) {
      std::fprintf(stderr,
                   "htmpll: warning: HTMPLL_THREADS=%ld clamped to the "
                   "pool maximum of 256\n",
                   parsed);
      return 256;
    }
    return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

ThreadPool::ThreadPool(std::size_t threads) {
  HTMPLL_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_job_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    run_chunks();
    lock.lock();
    if (--busy_workers_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  const std::size_t n = job_n_;
  const std::size_t grain = job_grain_;
  const std::function<void(std::size_t)>& fn = *job_fn_;
  const bool instrumented = obs::enabled();
  const std::uint64_t t0 = instrumented ? obs::now_ns() : 0;
  std::size_t chunks_run = 0;
  std::size_t indices_run = 0;
  for (;;) {
    const std::size_t chunk =
        next_chunk_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t begin = chunk * grain;
    if (begin >= n) break;
    if (failed_.load(std::memory_order_relaxed)) break;
    const std::size_t end = std::min(n, begin + grain);
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
    ++chunks_run;
    indices_run += end - begin;
  }
  if (instrumented) {
    PoolMetrics& m = pool_metrics();
    m.chunks.add(chunks_run);
    m.indices.add(indices_run);
    m.busy_ns.add(obs::now_ns() - t0);
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  HTMPLL_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (n == 0) return;
  if (workers_.empty() || n <= grain || t_inside_worker) {
    if (obs::enabled()) {
      PoolMetrics& m = pool_metrics();
      m.jobs_inline.add();
      m.indices.add(n);
    }
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  HTMPLL_TRACE_SPAN("pool.parallel_for");
  const bool instrumented = obs::enabled();
  const std::uint64_t job_t0 = instrumented ? obs::now_ns() : 0;
  if (instrumented) pool_metrics().jobs.add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_n_ = n;
    job_grain_ = grain;
    job_fn_ = &fn;
    next_chunk_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    busy_workers_ = workers_.size();
    ++generation_;
  }
  cv_job_.notify_all();
  // Mark the participating caller like a worker for the duration of its
  // chunk processing: a nested parallel_for issued from inside fn would
  // otherwise publish a second job on this pool mid-flight.
  const bool was_inside = t_inside_worker;
  t_inside_worker = true;
  run_chunks();
  t_inside_worker = was_inside;
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return busy_workers_ == 0; });
  job_fn_ = nullptr;
  if (instrumented) {
    // Capacity offered during this job: wall time times pool width.
    // Telemetry derives utilization as pool_busy_ns / pool_width_ns.
    pool_metrics().width_ns.add((obs::now_ns() - job_t0) * threads());
  }
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, auto_grain(n), fn);
}

bool ThreadPool::would_run_inline(std::size_t n, std::size_t grain) const {
  return workers_.empty() || n <= grain || t_inside_worker;
}

void ThreadPool::note_inline_job(std::size_t n) {
  if (obs::enabled()) {
    PoolMetrics& m = pool_metrics();
    m.jobs_inline.add();
    m.indices.add(n);
  }
}

namespace {

std::size_t resolved_global_width() {
  const std::size_t width = configured_thread_count();
  // Gauges record configuration unconditionally, so the resolved width
  // is visible even when obs is enabled after pool creation.
  obs::gauge("parallel.pool_width").set(static_cast<double>(width));
  return width;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(resolved_global_width());
  return pool;
}

}  // namespace htmpll

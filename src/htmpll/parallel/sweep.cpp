#include "htmpll/parallel/sweep.hpp"

#include "htmpll/obs/trace.hpp"

namespace htmpll {

std::vector<cplx> jw_grid(const std::vector<double>& w) {
  std::vector<cplx> s(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) s[i] = cplx{0.0, w[i]};
  return s;
}

std::vector<cplx> SweepRunner::run(
    const std::vector<cplx>& s_grid,
    const std::function<cplx(cplx)>& evaluator) const {
  HTMPLL_TRACE_SPAN("sweep.run");
  std::vector<cplx> out(s_grid.size());
  pool_->for_each_index(s_grid.size(),
                        [&](std::size_t i) { out[i] = evaluator(s_grid[i]); });
  return out;
}

std::vector<cplx> SweepRunner::run_jw(
    const std::vector<double>& w_grid,
    const std::function<cplx(cplx)>& evaluator) const {
  HTMPLL_TRACE_SPAN("sweep.run_jw");
  std::vector<cplx> out(w_grid.size());
  pool_->for_each_index(w_grid.size(), [&](std::size_t i) {
    out[i] = evaluator(cplx{0.0, w_grid[i]});
  });
  return out;
}

}  // namespace htmpll

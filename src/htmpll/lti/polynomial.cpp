#include "htmpll/lti/polynomial.hpp"

#include <cmath>
#include <sstream>

#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {
// Trailing coefficients below this absolute magnitude are trimmed.  The
// threshold is deliberately near-denormal: coefficients of a physical
// polynomial carry different units per power of s and can legitimately
// span 20+ orders of magnitude, so any *relative* trimming (against the
// largest coefficient) silently deletes real dynamics -- e.g. the s^3
// term of a loop evaluated at w0 ~ 1e9 rad/s.
constexpr double kTrimTol = 1e-250;
}  // namespace

Polynomial::Polynomial(CVector coeffs) : coeff_(std::move(coeffs)) {
  HTMPLL_REQUIRE(!coeff_.empty(), "polynomial needs at least one coefficient");
  trim();
}

Polynomial Polynomial::from_real(const std::vector<double>& coeffs) {
  CVector c(coeffs.begin(), coeffs.end());
  return Polynomial(std::move(c));
}

Polynomial Polynomial::constant(cplx c) { return Polynomial(CVector{c}); }

Polynomial Polynomial::s() { return Polynomial(CVector{cplx{0.0}, cplx{1.0}}); }

Polynomial Polynomial::from_roots(const CVector& roots, cplx leading) {
  Polynomial p = constant(leading);
  for (const cplx& r : roots) {
    p *= Polynomial(CVector{-r, cplx{1.0}});
  }
  return p;
}

void Polynomial::trim() {
  while (coeff_.size() > 1 && std::abs(coeff_.back()) <= kTrimTol) {
    coeff_.pop_back();
  }
  if (coeff_.size() == 1 && std::abs(coeff_[0]) <= kTrimTol) {
    coeff_[0] = cplx{0.0};
  }
}

bool Polynomial::is_zero() const {
  return coeff_.size() == 1 && coeff_[0] == cplx{0.0};
}

bool Polynomial::is_real(double tol) const {
  double maxmag = 0.0;
  for (const cplx& c : coeff_) maxmag = std::max(maxmag, std::abs(c));
  for (const cplx& c : coeff_) {
    if (std::abs(c.imag()) > tol * std::max(1.0, maxmag)) return false;
  }
  return true;
}

cplx Polynomial::operator()(cplx s) const {
  cplx acc{0.0};
  for (std::size_t i = coeff_.size(); i-- > 0;) acc = acc * s + coeff_[i];
  return acc;
}

cplx Polynomial::derivative_at(cplx s, unsigned k) const {
  Polynomial p = *this;
  for (unsigned i = 0; i < k; ++i) p = p.derivative();
  return p(s);
}

Polynomial Polynomial::derivative() const {
  if (degree() == 0) return Polynomial();
  CVector d(coeff_.size() - 1);
  for (std::size_t i = 1; i < coeff_.size(); ++i) {
    d[i - 1] = coeff_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(d));
}

Polynomial& Polynomial::operator+=(const Polynomial& o) {
  if (coeff_.size() < o.coeff_.size()) coeff_.resize(o.coeff_.size());
  for (std::size_t i = 0; i < o.coeff_.size(); ++i) coeff_[i] += o.coeff_[i];
  trim();
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& o) {
  if (coeff_.size() < o.coeff_.size()) coeff_.resize(o.coeff_.size());
  for (std::size_t i = 0; i < o.coeff_.size(); ++i) coeff_[i] -= o.coeff_[i];
  trim();
  return *this;
}

Polynomial& Polynomial::operator*=(const Polynomial& o) {
  if (is_zero() || o.is_zero()) {
    coeff_ = {cplx{0.0}};
    return *this;
  }
  CVector prod(coeff_.size() + o.coeff_.size() - 1, cplx{0.0});
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    if (coeff_[i] == cplx{0.0}) continue;
    for (std::size_t j = 0; j < o.coeff_.size(); ++j) {
      prod[i + j] += coeff_[i] * o.coeff_[j];
    }
  }
  coeff_ = std::move(prod);
  trim();
  return *this;
}

Polynomial& Polynomial::operator*=(cplx s) {
  for (cplx& c : coeff_) c *= s;
  trim();
  return *this;
}

std::pair<Polynomial, Polynomial> Polynomial::divmod(const Polynomial& d) const {
  HTMPLL_REQUIRE(!d.is_zero(), "polynomial division by zero");
  if (degree() < d.degree()) return {Polynomial(), *this};
  CVector rem = coeff_;
  CVector quot(degree() - d.degree() + 1, cplx{0.0});
  const cplx lead = d.leading();
  for (std::size_t k = quot.size(); k-- > 0;) {
    const cplx q = rem[k + d.degree()] / lead;
    quot[k] = q;
    if (q == cplx{0.0}) continue;
    for (std::size_t j = 0; j < d.coeff_.size(); ++j) {
      rem[k + j] -= q * d.coeff_[j];
    }
  }
  rem.resize(d.degree() == 0 ? 1 : d.degree());
  if (rem.empty()) rem.push_back(cplx{0.0});
  return {Polynomial(std::move(quot)), Polynomial(std::move(rem))};
}

Polynomial Polynomial::shifted_argument(cplx shift) const {
  // Horner-style Taylor shift: p(s + a) computed by repeated synthetic
  // division, numerically stable for the modest degrees used here.
  CVector c = coeff_;
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = n - 1; j > i; --j) {
      c[j - 1] += shift * c[j];
    }
  }
  return Polynomial(std::move(c));
}

Polynomial Polynomial::scaled_argument(cplx alpha) const {
  CVector c = coeff_;
  cplx p{1.0};
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] *= p;
    p *= alpha;
  }
  return Polynomial(std::move(c));
}

bool Polynomial::approx_equal(const Polynomial& o, double tol) const {
  const std::size_t n = std::max(coeff_.size(), o.coeff_.size());
  double scale = 0.0;
  for (const cplx& c : coeff_) scale = std::max(scale, std::abs(c));
  for (const cplx& c : o.coeff_) scale = std::max(scale, std::abs(c));
  if (scale == 0.0) return true;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(coefficient(i) - o.coefficient(i)) > tol * scale) return false;
  }
  return true;
}

std::string Polynomial::to_string(const std::string& var) const {
  std::ostringstream os;
  os.precision(6);
  bool first = true;
  for (std::size_t i = 0; i < coeff_.size(); ++i) {
    const cplx c = coeff_[i];
    if (c == cplx{0.0} && coeff_.size() > 1) continue;
    if (!first) os << " + ";
    first = false;
    if (std::abs(c.imag()) < 1e-15 * std::max(1.0, std::abs(c.real()))) {
      os << c.real();
    } else {
      os << '(' << c.real() << (c.imag() < 0 ? "-" : "+")
         << std::abs(c.imag()) << "j)";
    }
    if (i >= 1) os << '*' << var;
    if (i >= 2) os << '^' << i;
  }
  if (first) os << '0';
  return os.str();
}

}  // namespace htmpll

// Charge-pump loop-filter component library and the paper's "typical
// loop design" (Fig. 3 topology, Fig. 5 open-loop characteristic).
//
// The PFD steers a charge pump with current Icp into the impedance
//   Z_LF(s) = (1 + s R C1) / (s (C1+C2) (1 + s R C1 C2/(C1+C2)))
// (series R-C1 shunted by C2), giving the loop-filter transfer function
// H_LF(s) = Icp * Z_LF(s) of eq. 21 and the open-loop gain of eq. 35:
//   A(s) = (w0/2pi) * (v0/s) * H_LF(s)
// -- three poles (two at DC) and one zero, exactly Fig. 5.
#pragma once

#include "htmpll/lti/rational.hpp"

namespace htmpll {

/// Physical second-order charge-pump filter: series R-C1 with shunt C2.
/// C2 = 0 degenerates to the classic first-order R-C network of
/// Gardner's second-order loop analysis (Z biproper, no parasitic pole).
struct ChargePumpFilter {
  double r;   ///< ohms
  double c1;  ///< farads (series with R)
  double c2;  ///< farads (shunt ripple capacitor; may be 0)

  /// Z_LF(s) as seen by the charge pump.
  RationalFunction impedance() const;

  double zero_freq() const;   ///< wz = 1/(R C1), rad/s
  double pole_freq() const;   ///< wp = (C1+C2)/(R C1 C2); +inf when C2=0
  double total_cap() const;   ///< C1 + C2

  /// Synthesizes components from the (wz, wp, Ctot) design view.
  /// Requires wp > wz > 0 and Ctot > 0.
  static ChargePumpFilter from_frequencies(double wz, double wp, double ctot);
};

/// Complete small-signal parameter set of the sampled PLL of Fig. 1.
struct PllParameters {
  double w0;    ///< reference angular frequency (rad/s); T = 2pi/w0
  double icp;   ///< charge-pump current (A)
  double kvco;  ///< VCO sensitivity v0 of eq. 24 (s/(V*s) in the paper's
                ///< time-normalized phase convention)
  ChargePumpFilter filter;

  /// H_LF(s) = Icp * Z_LF(s), eq. 21.
  RationalFunction loop_filter_tf() const;

  /// Continuous-time LTI open-loop gain A(s), eq. 35.
  RationalFunction open_loop_gain() const;

  /// Classical LTI closed-loop approximation A/(1+A) (eq. 38, rightmost).
  RationalFunction lti_closed_loop() const;

  double period() const;  ///< T = 2pi/w0
};

/// Builds the paper's typical loop: zero at w_ug/gamma, parasitic pole at
/// gamma*w_ug, charge-pump current scaled so |A(j w_ug)| = 1 exactly.
/// `w_ug` and `w0` are rad/s; gamma = 4 reproduces Fig. 5 (classical
/// phase margin atan(gamma) - atan(1/gamma) ~ 61.9 deg).
PllParameters make_typical_loop(double w_ug, double w0, double gamma = 4.0);

/// Classical LTI phase margin of the typical loop in degrees:
/// atan(gamma) - atan(1/gamma).
double typical_loop_lti_phase_margin_deg(double gamma = 4.0);

/// Gardner's classic second-order charge-pump loop: no ripple capacitor
/// (C2 = 0), so A(s) = K (1 + s/wz)/s^2 with wz = w_ug/gamma and
/// |A(j w_ug)| = 1.  Classical phase margin: atan(gamma).  Relative
/// degree 1 -- exercises the principal-value branch of the aliasing
/// machinery and the half-sample term of the z-domain transform.
PllParameters make_second_order_loop(double w_ug, double w0,
                                     double gamma = 4.0);

}  // namespace htmpll

// Rational transfer functions H(s) = N(s)/D(s).
//
// This is the workhorse LTI representation: loop-filter impedances, the
// open-loop gain A(s) of eq. 35, aliased copies A(s + j m w0), and the
// z-domain baseline all live here (the latter with `z` as the variable).
#pragma once

#include <string>

#include "htmpll/lti/polynomial.hpp"
#include "htmpll/lti/roots.hpp"

namespace htmpll {

class RationalFunction {
 public:
  /// Zero function 0/1.
  RationalFunction();

  /// N/D; throws if D is the zero polynomial.  The representation is
  /// normalized so the denominator has leading coefficient 1.
  RationalFunction(Polynomial num, Polynomial den);

  static RationalFunction constant(cplx c);

  /// k / s^n (n >= 1): ideal integrator chains.
  static RationalFunction integrator(cplx gain = 1.0, unsigned order = 1);

  /// Builds gain * prod(s - z_i) / prod(s - p_i).
  static RationalFunction from_zpk(const CVector& zeros, const CVector& poles,
                                   cplx gain);

  const Polynomial& num() const { return num_; }
  const Polynomial& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }

  /// deg(D) - deg(N); >= 1 means strictly proper (decays at infinity).
  int relative_degree() const;
  bool is_proper() const { return relative_degree() >= 0; }
  bool is_strictly_proper() const { return relative_degree() >= 1; }

  cplx operator()(cplx s) const;

  CVector zeros(const RootOptions& opts = {}) const;
  CVector poles(const RootOptions& opts = {}) const;

  RationalFunction& operator+=(const RationalFunction& o);
  RationalFunction& operator-=(const RationalFunction& o);
  RationalFunction& operator*=(const RationalFunction& o);
  RationalFunction& operator/=(const RationalFunction& o);

  friend RationalFunction operator+(RationalFunction a,
                                    const RationalFunction& b) {
    a += b;
    return a;
  }
  friend RationalFunction operator-(RationalFunction a,
                                    const RationalFunction& b) {
    a -= b;
    return a;
  }
  friend RationalFunction operator*(RationalFunction a,
                                    const RationalFunction& b) {
    a *= b;
    return a;
  }
  friend RationalFunction operator/(RationalFunction a,
                                    const RationalFunction& b) {
    a /= b;
    return a;
  }
  friend RationalFunction operator*(RationalFunction a, cplx s) {
    a *= RationalFunction::constant(s);
    return a;
  }
  friend RationalFunction operator*(cplx s, RationalFunction a) {
    a *= RationalFunction::constant(s);
    return a;
  }
  friend RationalFunction operator-(RationalFunction a) {
    a *= RationalFunction::constant(-1.0);
    return a;
  }

  RationalFunction inverse() const;

  /// Unity negative feedback: this / (1 + this).
  RationalFunction closed_loop_unity_feedback() const;

  /// H(s + shift).
  RationalFunction shifted_argument(cplx shift) const;

  /// H(alpha * s).
  RationalFunction scaled_argument(cplx alpha) const;

  /// Cancels numerically coincident pole/zero pairs (within tol).  Useful
  /// after long arithmetic chains; never called implicitly.
  RationalFunction simplified(double tol = 1e-8) const;

  bool approx_equal(const RationalFunction& o, double tol = 1e-9) const;

  std::string to_string(const std::string& var = "s") const;

 private:
  void normalize();
  Polynomial num_;
  Polynomial den_;
};

}  // namespace htmpll

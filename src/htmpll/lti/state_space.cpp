#include "htmpll/lti/state_space.hpp"

#include "htmpll/linalg/lu.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

cplx StateSpace::frequency_response(cplx s) const {
  const std::size_t n = order();
  if (n == 0) return cplx{d};
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = -a(i, j);
    m(i, i) += s;
  }
  CVector rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = b(i, 0);
  const CVector x = CLu(std::move(m)).solve(rhs);
  cplx y{d};
  for (std::size_t i = 0; i < n; ++i) y += c(0, i) * x[i];
  return y;
}

double StateSpace::output(const RVector& x, double u) const {
  HTMPLL_REQUIRE(x.size() == order(), "state dimension mismatch");
  double y = d * u;
  for (std::size_t i = 0; i < order(); ++i) y += c(0, i) * x[i];
  return y;
}

StateSpace to_state_space(const RationalFunction& h) {
  HTMPLL_REQUIRE(h.is_proper(), "state space requires a proper function");
  HTMPLL_REQUIRE(h.num().is_real(1e-9) && h.den().is_real(1e-9),
                 "state space requires real coefficients");

  const std::size_t n = h.den().degree();
  // Denominator is monic after RationalFunction normalization.
  std::vector<double> aden(n + 1), bnum(n + 1, 0.0);
  for (std::size_t i = 0; i <= n; ++i) {
    aden[i] = h.den().coefficient(i).real();
  }
  for (std::size_t i = 0; i <= h.num().degree(); ++i) {
    bnum[i] = h.num().coefficient(i).real();
  }

  StateSpace ss;
  // Direct term: coefficient of s^n in the numerator (monic denominator).
  ss.d = bnum[n];

  if (n == 0) {
    ss.a = RMatrix(0, 0);
    ss.b = RMatrix(0, 1);
    ss.c = RMatrix(1, 0);
    return ss;
  }

  ss.a = RMatrix(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) ss.a(i, i + 1) = 1.0;
  for (std::size_t j = 0; j < n; ++j) ss.a(n - 1, j) = -aden[j];

  ss.b = RMatrix(n, 1);
  ss.b(n - 1, 0) = 1.0;

  // y = sum (b_i - d*a_i) x_i + d u  in controllable canonical form.
  ss.c = RMatrix(1, n);
  for (std::size_t j = 0; j < n; ++j) ss.c(0, j) = bnum[j] - ss.d * aden[j];
  return ss;
}

}  // namespace htmpll

// Real state-space realizations of rational transfer functions.
//
// The time-domain simulator propagates the loop filter (and augmented
// VCO phase) exactly between charge-pump events; this module supplies the
// controllable-canonical realization and a complex-frequency response for
// cross-checking against the RationalFunction it came from.
#pragma once

#include "htmpll/linalg/matrix.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {

/// x' = A x + B u,  y = C x + D u  (single input, single output).
struct StateSpace {
  RMatrix a;  ///< n x n
  RMatrix b;  ///< n x 1
  RMatrix c;  ///< 1 x n
  double d = 0.0;

  std::size_t order() const { return a.rows(); }

  /// C (sI - A)^{-1} B + D.
  cplx frequency_response(cplx s) const;

  /// Output for a given state and input.
  double output(const RVector& x, double u) const;
};

/// Controllable canonical realization.  Requires a proper transfer
/// function with (numerically) real coefficients.
StateSpace to_state_space(const RationalFunction& h);

}  // namespace htmpll

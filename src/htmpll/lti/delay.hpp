// Rational (Pade) approximation of a pure loop delay e^{-s tau}.
//
// Real PFD/charge-pump paths carry a dead time (reset delay, buffer
// chains).  A delay folds into the loop-filter transfer function as a
// biproper all-pass-like rational factor, which the HTM machinery (and
// the aliasing-sum closed forms) then handle unchanged.  Delay eats
// phase margin linearly with frequency, and the *sampled* loop -- whose
// effective crossover sits higher than the LTI one -- loses more than
// LTI analysis predicts; see bench/ablation_delay.
#pragma once

#include "htmpll/lti/rational.hpp"

namespace htmpll {

/// Diagonal (m, m) Pade approximant of e^{-s tau}.  Orders 1..5; higher
/// orders widen the frequency range over which the phase is accurate
/// (roughly |w tau| < m).  tau == 0 returns the constant 1.
RationalFunction pade_delay(double tau, int order = 3);

/// Worst-case relative error |pade(jw) - e^{-jw tau}| over (0, w_max],
/// scanned on `points` samples; used for order selection and testing.
double pade_delay_error(double tau, int order, double w_max,
                        std::size_t points = 200);

}  // namespace htmpll

#include "htmpll/lti/partial_fractions.hpp"

#include <cmath>

#include "htmpll/util/check.hpp"

namespace htmpll {

PartialFractions::PartialFractions(const RationalFunction& f,
                                   double cluster_tol) {
  // Split off the polynomial (direct) part first.
  auto [quot, rem] = f.num().divmod(f.den());
  direct_ = quot;
  const Polynomial& den = f.den();
  if (rem.is_zero()) return;

  const CVector raw_poles = find_roots(den);
  const std::vector<RootCluster> clusters =
      cluster_roots(raw_poles, cluster_tol);

  for (const RootCluster& cl : clusters) {
    const cplx p = cl.value;
    const int m = cl.multiplicity;

    // Deflate: Q(s) = D(s) / (s - p)^m via synthetic division.  Division
    // by a clustered root leaves a small remainder we drop.
    Polynomial q = den;
    const Polynomial factor(CVector{-p, cplx{1.0}});
    for (int i = 0; i < m; ++i) {
      q = q.divmod(factor).first;
    }

    // Taylor expansions about p.
    const Polynomial n_at_p = rem.shifted_argument(p);
    const Polynomial q_at_p = q.shifted_argument(p);
    const cplx q0 = q_at_p.coefficient(0);
    HTMPLL_ASSERT(std::abs(q0) > 0.0);

    // Power-series division c = N/Q to order m-1.
    CVector c(m, cplx{0.0});
    for (int j = 0; j < m; ++j) {
      cplx acc = n_at_p.coefficient(static_cast<std::size_t>(j));
      for (int i = 1; i <= j; ++i) {
        acc -= q_at_p.coefficient(static_cast<std::size_t>(i)) * c[j - i];
      }
      c[j] = acc / q0;
    }

    // N/D = sum_{k=1..m} c_{m-k} / (s-p)^k + regular part.
    PoleTerm term;
    term.pole = p;
    term.residues.resize(m);
    for (int k = 1; k <= m; ++k) {
      term.residues[k - 1] = c[m - k];
    }
    terms_.push_back(std::move(term));
  }
}

cplx PartialFractions::operator()(cplx s) const {
  cplx acc = direct_(s);
  for (const PoleTerm& t : terms_) {
    const cplx d = s - t.pole;
    cplx power = d;
    for (const cplx& r : t.residues) {
      acc += r / power;
      power *= d;
    }
  }
  return acc;
}

cplx PartialFractions::impulse_response(double t) const {
  HTMPLL_REQUIRE(direct_.is_zero(),
                 "impulse_response requires a strictly proper function");
  HTMPLL_REQUIRE(t >= 0.0, "impulse response is causal (t >= 0)");
  cplx acc{0.0};
  for (const PoleTerm& term : terms_) {
    const cplx e = std::exp(term.pole * t);
    double factorial = 1.0;
    double tpow = 1.0;
    for (std::size_t j = 0; j < term.residues.size(); ++j) {
      if (j > 0) {
        factorial *= static_cast<double>(j);
        tpow *= t;
      }
      acc += term.residues[j] * tpow / factorial * e;
    }
  }
  return acc;
}

PartialFractions PartialFractions::shifted_argument(cplx shift) const {
  PartialFractions out;
  out.direct_ = direct_.shifted_argument(shift);
  out.terms_ = terms_;
  for (PoleTerm& t : out.terms_) t.pole -= shift;
  return out;
}

RationalFunction PartialFractions::reassemble() const {
  RationalFunction out(direct_, Polynomial::constant(1.0));
  for (const PoleTerm& t : terms_) {
    const Polynomial factor(CVector{-t.pole, cplx{1.0}});
    Polynomial den = Polynomial::constant(1.0);
    for (std::size_t j = 0; j < t.residues.size(); ++j) {
      den *= factor;
      out += RationalFunction(Polynomial::constant(t.residues[j]), den);
    }
  }
  return out;
}

}  // namespace htmpll

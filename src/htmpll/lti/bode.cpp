#include "htmpll/lti/bode.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {

double magnitude_db(cplx h) { return 20.0 * std::log10(std::abs(h)); }

double phase_deg(cplx h) {
  return std::arg(h) * 180.0 / std::numbers::pi;
}

std::vector<double> unwrap_phase(const std::vector<double>& radians) {
  std::vector<double> out = radians;
  double offset = 0.0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    double d = radians[i] - radians[i - 1];
    while (d > std::numbers::pi) {
      d -= 2.0 * std::numbers::pi;
      offset -= 2.0 * std::numbers::pi;
    }
    while (d < -std::numbers::pi) {
      d += 2.0 * std::numbers::pi;
      offset += 2.0 * std::numbers::pi;
    }
    out[i] = radians[i] + offset;
  }
  return out;
}

namespace {

/// Phase of h(w) unwrapped continuously from a reference frequency by
/// walking a fine grid from w_ref to w.
double unwrapped_phase_at(const FrequencyResponse& h, double w_ref, double w,
                          std::size_t steps) {
  std::vector<double> ph;
  ph.reserve(steps + 1);
  const std::vector<double> grid =
      (w > w_ref) ? logspace(w_ref, w, steps + 1)
                  : logspace(w, w_ref, steps + 1);
  for (double x : grid) ph.push_back(std::arg(h(x)));
  const std::vector<double> un = unwrap_phase(ph);
  return (w > w_ref) ? un.back() : un.front();
}

}  // namespace

std::optional<CrossoverResult> find_gain_crossover(const FrequencyResponse& h,
                                                   double w_lo, double w_hi,
                                                   const MarginOptions& opts) {
  HTMPLL_REQUIRE(w_lo > 0.0 && w_hi > w_lo, "need 0 < w_lo < w_hi");
  const std::vector<double> grid = logspace(w_lo, w_hi, opts.grid_points);
  double prev_mag = std::abs(h(grid[0]));
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double mag = std::abs(h(grid[i]));
    if (prev_mag >= 1.0 && mag < 1.0) {
      // Bisection on log|H| - 0 over [grid[i-1], grid[i]].
      double a = grid[i - 1], b = grid[i];
      for (int it = 0; it < 200; ++it) {
        const double mid = std::sqrt(a * b);
        if (std::abs(h(mid)) >= 1.0) {
          a = mid;
        } else {
          b = mid;
        }
        if ((b - a) <= opts.tolerance * b) break;
      }
      const double wc = std::sqrt(a * b);
      const double ph =
          unwrapped_phase_at(h, w_lo, wc, opts.grid_points);
      // Normalize the reference so that the phase at w_lo uses its
      // principal value; for open-loop PLL gains (two poles at DC) that
      // starts near -180 deg, as in the paper's Fig. 5.
      return CrossoverResult{wc, 180.0 + ph * 180.0 / std::numbers::pi};
    }
    prev_mag = mag;
  }
  return std::nullopt;
}

std::optional<GainMarginResult> find_gain_margin(const FrequencyResponse& h,
                                                 double w_lo, double w_hi,
                                                 const MarginOptions& opts) {
  HTMPLL_REQUIRE(w_lo > 0.0 && w_hi > w_lo, "need 0 < w_lo < w_hi");
  const std::vector<double> grid = logspace(w_lo, w_hi, opts.grid_points);
  std::vector<double> raw;
  raw.reserve(grid.size());
  for (double w : grid) raw.push_back(std::arg(h(w)));
  const std::vector<double> ph = unwrap_phase(raw);
  const double target = -std::numbers::pi;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const bool crossed = (ph[i - 1] > target && ph[i] <= target) ||
                         (ph[i - 1] < target && ph[i] >= target);
    if (!crossed) continue;
    double a = grid[i - 1], b = grid[i];
    double pa = ph[i - 1];
    for (int it = 0; it < 200; ++it) {
      const double mid = std::sqrt(a * b);
      // Local unwrap relative to the endpoint keeps continuity.
      double pm = std::arg(h(mid));
      while (pm - pa > std::numbers::pi) pm -= 2.0 * std::numbers::pi;
      while (pm - pa < -std::numbers::pi) pm += 2.0 * std::numbers::pi;
      if ((pa > target) == (pm > target)) {
        a = mid;
        pa = pm;
      } else {
        b = mid;
      }
      if ((b - a) <= opts.tolerance * b) break;
    }
    const double wc = std::sqrt(a * b);
    return GainMarginResult{wc, -magnitude_db(h(wc))};
  }
  return std::nullopt;
}

std::vector<BodePoint> bode_points_from_samples(
    const std::vector<double>& w_grid, const CVector& h) {
  HTMPLL_REQUIRE(w_grid.size() == h.size(),
                 "bode samples / grid length mismatch");
  const std::size_t points = w_grid.size();
  std::vector<double> raw;
  raw.reserve(points);
  std::vector<BodePoint> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    out[i].w = w_grid[i];
    out[i].mag_db = magnitude_db(h[i]);
    raw.push_back(std::arg(h[i]));
  }
  const std::vector<double> ph = unwrap_phase(raw);
  for (std::size_t i = 0; i < points; ++i) {
    out[i].phase_deg = ph[i] * 180.0 / std::numbers::pi;
  }
  return out;
}

std::vector<BodePoint> bode_sweep(const FrequencyResponse& h, double w_lo,
                                  double w_hi, std::size_t points) {
  const std::vector<double> grid = logspace(w_lo, w_hi, points);
  CVector samples(points);
  for (std::size_t i = 0; i < points; ++i) samples[i] = h(grid[i]);
  return bode_points_from_samples(grid, samples);
}

}  // namespace htmpll

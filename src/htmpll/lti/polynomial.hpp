// Dense univariate polynomials with complex coefficients.
//
// Coefficients are stored in ascending power order: c[0] + c[1] s + ...
// Real transfer functions are represented with complex coefficients whose
// imaginary parts are zero; `is_real` reports that property.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

class Polynomial {
 public:
  /// Zero polynomial (degree reported as 0, value 0 everywhere).
  Polynomial() : coeff_{cplx{0.0}} {}

  /// Ascending coefficients; trailing (near-)zero coefficients trimmed.
  explicit Polynomial(CVector coeffs);

  /// Real-coefficient convenience.
  static Polynomial from_real(const std::vector<double>& coeffs);

  /// Constant polynomial.
  static Polynomial constant(cplx c);

  /// The monomial s.
  static Polynomial s();

  /// Builds prod_i (s - roots[i]) scaled by `leading`.
  static Polynomial from_roots(const CVector& roots, cplx leading = 1.0);

  std::size_t degree() const { return coeff_.size() - 1; }
  bool is_zero() const;
  bool is_real(double tol = 1e-12) const;

  const CVector& coefficients() const { return coeff_; }
  cplx coefficient(std::size_t k) const {
    return k < coeff_.size() ? coeff_[k] : cplx{0.0};
  }
  cplx leading() const { return coeff_.back(); }

  /// Horner evaluation.
  cplx operator()(cplx s) const;

  /// Evaluate the k-th derivative at s.
  cplx derivative_at(cplx s, unsigned k = 1) const;

  Polynomial derivative() const;

  Polynomial& operator+=(const Polynomial& o);
  Polynomial& operator-=(const Polynomial& o);
  Polynomial& operator*=(const Polynomial& o);
  Polynomial& operator*=(cplx s);

  friend Polynomial operator+(Polynomial a, const Polynomial& b) {
    a += b;
    return a;
  }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) {
    a -= b;
    return a;
  }
  friend Polynomial operator*(Polynomial a, const Polynomial& b) {
    a *= b;
    return a;
  }
  friend Polynomial operator*(Polynomial a, cplx s) {
    a *= s;
    return a;
  }
  friend Polynomial operator*(cplx s, Polynomial a) {
    a *= s;
    return a;
  }
  friend Polynomial operator-(Polynomial a) {
    a *= cplx{-1.0};
    return a;
  }

  /// Polynomial long division: *this = q * d + r with deg r < deg d.
  /// Throws if d is zero.
  std::pair<Polynomial, Polynomial> divmod(const Polynomial& d) const;

  /// Substitute s -> s + shift (Taylor shift); used to evaluate aliased
  /// copies H(s + j m w0) symbolically.
  Polynomial shifted_argument(cplx shift) const;

  /// Substitute s -> alpha * s (frequency scaling).
  Polynomial scaled_argument(cplx alpha) const;

  bool approx_equal(const Polynomial& o, double tol = 1e-9) const;

  std::string to_string(const std::string& var = "s") const;

 private:
  void trim();
  CVector coeff_;
};

}  // namespace htmpll

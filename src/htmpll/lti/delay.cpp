#include "htmpll/lti/delay.hpp"

#include <cmath>

#include "htmpll/util/check.hpp"

namespace htmpll {

RationalFunction pade_delay(double tau, int order) {
  HTMPLL_REQUIRE(tau >= 0.0, "delay must be non-negative");
  HTMPLL_REQUIRE(order >= 1 && order <= 5,
                 "pade_delay supports orders 1..5");
  if (tau == 0.0) return RationalFunction::constant(1.0);

  // e^{-x} ~ N(x)/D(x) with
  //   N(x) = sum_k c_k (-x)^k,  D(x) = sum_k c_k x^k,
  //   c_k = (2m-k)! m! / ((2m)! k! (m-k)!)
  // computed via the recurrence c_k = c_{k-1} (m-k+1)/((2m-k+1) k).
  const int m = order;
  std::vector<double> c(m + 1);
  c[0] = 1.0;
  for (int k = 1; k <= m; ++k) {
    c[k] = c[k - 1] * static_cast<double>(m - k + 1) /
           (static_cast<double>(2 * m - k + 1) * k);
  }
  CVector num(m + 1), den(m + 1);
  double tau_pow = 1.0;
  for (int k = 0; k <= m; ++k) {
    const double coeff = c[k] * tau_pow;
    num[k] = (k % 2 == 0) ? coeff : -coeff;
    den[k] = coeff;
    tau_pow *= tau;
  }
  return RationalFunction(Polynomial(num), Polynomial(den));
}

double pade_delay_error(double tau, int order, double w_max,
                        std::size_t points) {
  HTMPLL_REQUIRE(points >= 2, "need at least two scan points");
  const RationalFunction p = pade_delay(tau, order);
  double worst = 0.0;
  for (std::size_t i = 1; i <= points; ++i) {
    const double w = w_max * static_cast<double>(i) /
                     static_cast<double>(points);
    const cplx exact = std::exp(cplx{0.0, -w * tau});
    worst = std::max(worst, std::abs(p(cplx{0.0, w}) - exact));
  }
  return worst;
}

}  // namespace htmpll

#include "htmpll/lti/rational.hpp"

#include <cmath>
#include <sstream>

#include "htmpll/util/check.hpp"

namespace htmpll {

RationalFunction::RationalFunction()
    : num_(), den_(Polynomial::constant(1.0)) {}

RationalFunction::RationalFunction(Polynomial num, Polynomial den)
    : num_(std::move(num)), den_(std::move(den)) {
  HTMPLL_REQUIRE(!den_.is_zero(), "rational function with zero denominator");
  normalize();
}

void RationalFunction::normalize() {
  const cplx lead = den_.leading();
  if (lead != cplx{1.0}) {
    const cplx inv = 1.0 / lead;
    num_ *= inv;
    den_ *= inv;
  }
  if (num_.is_zero()) den_ = Polynomial::constant(1.0);
}

RationalFunction RationalFunction::constant(cplx c) {
  return RationalFunction(Polynomial::constant(c), Polynomial::constant(1.0));
}

RationalFunction RationalFunction::integrator(cplx gain, unsigned order) {
  HTMPLL_REQUIRE(order >= 1, "integrator order must be >= 1");
  CVector den(order + 1, cplx{0.0});
  den.back() = 1.0;
  return RationalFunction(Polynomial::constant(gain), Polynomial(den));
}

RationalFunction RationalFunction::from_zpk(const CVector& zeros,
                                            const CVector& poles, cplx gain) {
  return RationalFunction(Polynomial::from_roots(zeros, gain),
                          Polynomial::from_roots(poles));
}

int RationalFunction::relative_degree() const {
  return static_cast<int>(den_.degree()) - static_cast<int>(num_.degree());
}

cplx RationalFunction::operator()(cplx s) const {
  const cplx d = den_(s);
  return num_(s) / d;
}

CVector RationalFunction::zeros(const RootOptions& opts) const {
  if (num_.is_zero()) return {};
  return find_roots(num_, opts);
}

CVector RationalFunction::poles(const RootOptions& opts) const {
  return find_roots(den_, opts);
}

RationalFunction& RationalFunction::operator+=(const RationalFunction& o) {
  num_ = num_ * o.den_ + o.num_ * den_;
  den_ = den_ * o.den_;
  normalize();
  return *this;
}

RationalFunction& RationalFunction::operator-=(const RationalFunction& o) {
  num_ = num_ * o.den_ - o.num_ * den_;
  den_ = den_ * o.den_;
  normalize();
  return *this;
}

RationalFunction& RationalFunction::operator*=(const RationalFunction& o) {
  num_ *= o.num_;
  den_ *= o.den_;
  normalize();
  return *this;
}

RationalFunction& RationalFunction::operator/=(const RationalFunction& o) {
  HTMPLL_REQUIRE(!o.is_zero(), "division by the zero rational function");
  num_ *= o.den_;
  den_ *= o.num_;
  normalize();
  return *this;
}

RationalFunction RationalFunction::inverse() const {
  HTMPLL_REQUIRE(!is_zero(), "inverse of the zero rational function");
  return RationalFunction(den_, num_);
}

RationalFunction RationalFunction::closed_loop_unity_feedback() const {
  // G/(1+G) = N / (D + N)
  return RationalFunction(num_, den_ + num_);
}

RationalFunction RationalFunction::shifted_argument(cplx shift) const {
  return RationalFunction(num_.shifted_argument(shift),
                          den_.shifted_argument(shift));
}

RationalFunction RationalFunction::scaled_argument(cplx alpha) const {
  return RationalFunction(num_.scaled_argument(alpha),
                          den_.scaled_argument(alpha));
}

RationalFunction RationalFunction::simplified(double tol) const {
  if (num_.is_zero()) return *this;
  CVector zs = zeros();
  CVector ps = poles();
  const cplx gain = num_.leading();  // den is monic after normalize()
  std::vector<bool> zero_used(zs.size(), false);
  CVector kept_poles;
  for (const cplx& p : ps) {
    bool cancelled = false;
    for (std::size_t i = 0; i < zs.size(); ++i) {
      if (zero_used[i]) continue;
      if (std::abs(p - zs[i]) <= tol * std::max(1.0, std::abs(p))) {
        zero_used[i] = true;
        cancelled = true;
        break;
      }
    }
    if (!cancelled) kept_poles.push_back(p);
  }
  CVector kept_zeros;
  for (std::size_t i = 0; i < zs.size(); ++i) {
    if (!zero_used[i]) kept_zeros.push_back(zs[i]);
  }
  RationalFunction out = from_zpk(kept_zeros, kept_poles, gain);
  // Root-refactoring can perturb real coefficients by tiny imaginary
  // parts; scrub them when the original was real.
  if (num_.is_real() && den_.is_real()) {
    CVector nc = out.num_.coefficients();
    CVector dc = out.den_.coefficients();
    for (cplx& c : nc) c = cplx{c.real(), 0.0};
    for (cplx& c : dc) c = cplx{c.real(), 0.0};
    out = RationalFunction(Polynomial(nc), Polynomial(dc));
  }
  return out;
}

bool RationalFunction::approx_equal(const RationalFunction& o,
                                    double tol) const {
  // Cross-multiplied comparison avoids requiring identical factorization.
  const Polynomial lhs = num_ * o.den_;
  const Polynomial rhs = o.num_ * den_;
  return lhs.approx_equal(rhs, tol);
}

std::string RationalFunction::to_string(const std::string& var) const {
  std::ostringstream os;
  os << '(' << num_.to_string(var) << ") / (" << den_.to_string(var) << ')';
  return os.str();
}

}  // namespace htmpll

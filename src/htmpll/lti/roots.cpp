#include "htmpll/lti/roots.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

double cauchy_root_bound(const Polynomial& p) {
  const CVector& c = p.coefficients();
  const double lead = std::abs(c.back());
  HTMPLL_REQUIRE(lead > 0.0, "root bound of the zero polynomial");
  double m = 0.0;
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    m = std::max(m, std::abs(c[i]) / lead);
  }
  return 1.0 + m;
}

namespace {

/// Strips roots at exactly zero (trailing zero low-order coefficients) so
/// the Aberth iteration never needs to divide a zero-valued guess.
std::size_t strip_zero_roots(CVector& coeffs) {
  double maxmag = 0.0;
  for (const cplx& c : coeffs) maxmag = std::max(maxmag, std::abs(c));
  std::size_t count = 0;
  while (coeffs.size() > 1 && std::abs(coeffs.front()) <= 1e-300 * maxmag) {
    coeffs.erase(coeffs.begin());
    ++count;
  }
  return count;
}

}  // namespace

CVector find_roots(const Polynomial& p, const RootOptions& opts) {
  HTMPLL_REQUIRE(!p.is_zero(), "cannot find roots of the zero polynomial");
  CVector coeffs = p.coefficients();
  const std::size_t zeros = strip_zero_roots(coeffs);
  Polynomial q{CVector(coeffs)};
  const std::size_t n = q.degree();

  CVector roots(zeros, cplx{0.0});
  if (n == 0) return roots;

  // Closed forms for low degree keep the common cases exact.
  if (n == 1) {
    roots.push_back(-q.coefficient(0) / q.coefficient(1));
    return roots;
  }
  if (n == 2) {
    const cplx a = q.coefficient(2), b = q.coefficient(1), c = q.coefficient(0);
    const cplx d = std::sqrt(b * b - 4.0 * a * c);
    // Use the numerically stable pairing (avoid cancellation).
    const cplx bp = (std::real(std::conj(b) * d) >= 0.0) ? b + d : b - d;
    if (std::abs(bp) > 0.0) {
      const cplx r1 = -bp / (2.0 * a);
      const cplx r2 = c / (a * r1);
      roots.push_back(r1);
      roots.push_back(r2);
    } else {
      roots.push_back(cplx{0.0});
      roots.push_back(cplx{0.0});
    }
    return roots;
  }

  // Aberth-Ehrlich from points on a slightly asymmetric circle inside the
  // Cauchy bound (asymmetry breaks symmetric stagnation).
  const double radius = 0.5 * cauchy_root_bound(q);
  CVector z(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double angle =
        2.0 * std::numbers::pi * static_cast<double>(k) /
            static_cast<double>(n) + 0.7;
    z[k] = radius * cplx{std::cos(angle), std::sin(angle)};
  }

  const Polynomial dq = q.derivative();
  for (int it = 0; it < opts.max_iterations; ++it) {
    double worst = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const cplx pk = q(z[k]);
      const cplx dk = dq(z[k]);
      cplx newton;
      if (std::abs(dk) > 0.0) {
        newton = pk / dk;
      } else {
        newton = cplx{opts.tolerance, opts.tolerance};
      }
      cplx repulse{0.0};
      for (std::size_t j = 0; j < n; ++j) {
        if (j == k) continue;
        const cplx diff = z[k] - z[j];
        if (std::abs(diff) > 1e-300) repulse += 1.0 / diff;
      }
      const cplx denom = 1.0 - newton * repulse;
      const cplx step = (std::abs(denom) > 1e-300) ? newton / denom : newton;
      z[k] -= step;
      const double rel = std::abs(step) / std::max(1.0, std::abs(z[k]));
      worst = std::max(worst, rel);
    }
    if (worst < opts.tolerance) break;
  }

  // One Newton polish per root for good measure (helps simple roots;
  // multiple roots keep their cluster accuracy ~ tol^(1/m), which the
  // caller handles via cluster_roots).
  for (cplx& r : z) {
    const cplx d = dq(r);
    if (std::abs(d) > 0.0) {
      const cplx step = q(r) / d;
      if (std::abs(step) < 0.5 * std::max(1.0, std::abs(r))) r -= step;
    }
  }

  roots.insert(roots.end(), z.begin(), z.end());
  return roots;
}

std::vector<RootCluster> cluster_roots(const CVector& roots, double tol) {
  // Transitive (union-find) clustering: a multiplicity-m root scatters
  // into an eps^(1/m)-radius cloud whose diameter can exceed the
  // pairwise tolerance, so anchoring on one member is not enough --
  // chains of close roots must merge.
  const std::size_t n = roots.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&parent](std::size_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max(1.0, std::abs(roots[i]));
    for (std::size_t k = i + 1; k < n; ++k) {
      if (std::abs(roots[k] - roots[i]) <= tol * scale) {
        parent[find(k)] = find(i);
      }
    }
  }
  std::vector<RootCluster> clusters;
  std::vector<std::size_t> cluster_of(n, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    if (cluster_of[root] == SIZE_MAX) {
      cluster_of[root] = clusters.size();
      clusters.push_back({cplx{0.0}, 0});
    }
    RootCluster& c = clusters[cluster_of[root]];
    c.value += roots[i];
    ++c.multiplicity;
  }
  for (RootCluster& c : clusters) {
    c.value /= static_cast<double>(c.multiplicity);
  }
  return clusters;
}

}  // namespace htmpll

// Frequency-response utilities: dB/phase helpers, phase unwrapping, and
// crossover / stability-margin searches on arbitrary responses.
//
// The searches take a std::function so they work both for rational LTI
// responses A(jw) and for the time-varying effective open-loop gain
// lambda(jw) of eq. 37, which is not rational.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

/// Response evaluated on the jw axis as a function of w (rad/s).
using FrequencyResponse = std::function<cplx(double)>;

double magnitude_db(cplx h);
double phase_deg(cplx h);

/// Unwraps a phase sequence (radians) so consecutive samples never jump
/// by more than pi.
std::vector<double> unwrap_phase(const std::vector<double>& radians);

struct CrossoverResult {
  double frequency;         ///< rad/s of |H| = 1 crossing
  double phase_margin_deg;  ///< 180 deg + unwrapped arg H at the crossing
};

struct MarginOptions {
  std::size_t grid_points = 600;  ///< coarse log-grid scan density
  double tolerance = 1e-10;       ///< relative bisection tolerance on w
};

/// Finds the first downward |H(jw)| = 1 crossing in [w_lo, w_hi] by a
/// log-grid scan plus bisection.  The phase margin is computed with the
/// phase unwrapped along the scan path from w_lo, so loops whose raw
/// principal-value phase wraps (e.g. two integrator poles plus sampling
/// delay) are handled correctly.
std::optional<CrossoverResult> find_gain_crossover(
    const FrequencyResponse& h, double w_lo, double w_hi,
    const MarginOptions& opts = {});

struct GainMarginResult {
  double frequency;       ///< rad/s where unwrapped phase hits -180 deg
  double gain_margin_db;  ///< -|H| in dB at that frequency
};

/// Finds the first -180 deg crossing of the unwrapped phase (relative to
/// the phase at w_lo having its principal value).
std::optional<GainMarginResult> find_gain_margin(
    const FrequencyResponse& h, double w_lo, double w_hi,
    const MarginOptions& opts = {});

/// One Bode row: w, |H| dB, unwrapped phase deg.
struct BodePoint {
  double w;
  double mag_db;
  double phase_deg;
};

/// Samples H over a log grid and unwraps the phase along it.
std::vector<BodePoint> bode_sweep(const FrequencyResponse& h, double w_lo,
                                  double w_hi, std::size_t points);

/// Converts precomputed response samples h[i] = H(j w_grid[i]) into
/// Bode rows with the phase unwrapped along the grid.  Pairs with the
/// parallel sweep engine: evaluate the grid with a SweepRunner (order
/// is deterministic), then unwrap here serially.
std::vector<BodePoint> bode_points_from_samples(
    const std::vector<double>& w_grid, const CVector& h);

}  // namespace htmpll

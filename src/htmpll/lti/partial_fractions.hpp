// Partial-fraction decomposition of rational transfer functions,
// including repeated poles.
//
// This feeds two parts of the reproduction:
//  * the exact aliasing sum  lambda(s) = sum_m A(s + j m w0)  via the
//    closed form sum_m 1/(x + j m w0)^k  (see core/aliasing_sum),
//  * the impulse-invariant z-domain baseline (ztrans/), which needs
//    a(t) = sum_i sum_k r_ik t^(k-1) e^(p_i t)/(k-1)!.
#pragma once

#include <vector>

#include "htmpll/lti/rational.hpp"

namespace htmpll {

struct PoleTerm {
  cplx pole;
  /// residues[j] multiplies 1/(s - pole)^(j+1); size == multiplicity.
  CVector residues;
};

class PartialFractions {
 public:
  /// Decomposes f = direct(s) + sum_i sum_k r_ik/(s-p_i)^k.
  /// `cluster_tol` groups numerically coincident poles into one
  /// higher-multiplicity pole.  The default accommodates the root
  /// finder's spread for repeated roots (a multiplicity-m root is only
  /// resolvable to ~eps^(1/m), i.e. ~1e-4 for m = 4); callers with
  /// genuinely close-but-distinct poles should pass a tighter value.
  explicit PartialFractions(const RationalFunction& f,
                            double cluster_tol = 3e-4);

  const Polynomial& direct() const { return direct_; }
  const std::vector<PoleTerm>& terms() const { return terms_; }

  /// Evaluates the decomposition (must reproduce f up to rounding).
  cplx operator()(cplx s) const;

  /// Inverse Laplace transform at time t >= 0 (direct part must be
  /// constant-or-zero; a constant contributes a Dirac we cannot evaluate,
  /// so it is required to be zero -- the strictly proper case).
  cplx impulse_response(double t) const;

  /// Reassembles a RationalFunction (for round-trip testing).
  RationalFunction reassemble() const;

  /// Decomposition of f(s + shift): every pole moves to p - shift and
  /// the residues are unchanged (1/(s + shift - p)^k = 1/(s - (p -
  /// shift))^k), so shifted evaluation needs no new root finding.  This
  /// is how the evaluation-plan layer derives the pole/residue tables of
  /// the aliased copies H(s + j m w0) from one decomposition.
  PartialFractions shifted_argument(cplx shift) const;

 private:
  PartialFractions() = default;
  Polynomial direct_;
  std::vector<PoleTerm> terms_;
};

}  // namespace htmpll

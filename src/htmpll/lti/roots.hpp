// Polynomial root finding via the Aberth-Ehrlich simultaneous iteration.
//
// Used for pole/zero extraction of transfer functions, closed-loop pole
// searches, and the Jury/characteristic-polynomial stability tests.  The
// degrees involved are small (< 40), where Aberth converges in a handful
// of sweeps from Cauchy-bound initial guesses.
#pragma once

#include "htmpll/lti/polynomial.hpp"

namespace htmpll {

struct RootOptions {
  int max_iterations = 200;
  double tolerance = 1e-13;  ///< relative step-size stopping criterion
};

/// All complex roots of `p` (with multiplicity, as clustered numerical
/// copies).  Throws std::invalid_argument for the zero polynomial;
/// returns an empty vector for (non-zero) constants.
CVector find_roots(const Polynomial& p, const RootOptions& opts = {});

/// Groups numerically coincident roots.  `tol` is an absolute distance
/// scaled internally by the root-cluster magnitude.
struct RootCluster {
  cplx value;          ///< centroid of the cluster
  int multiplicity;    ///< number of roots merged
};
std::vector<RootCluster> cluster_roots(const CVector& roots,
                                       double tol = 1e-6);

/// Upper bound on |root| (Cauchy bound).
double cauchy_root_bound(const Polynomial& p);

}  // namespace htmpll

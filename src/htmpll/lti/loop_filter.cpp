#include "htmpll/lti/loop_filter.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

RationalFunction ChargePumpFilter::impedance() const {
  HTMPLL_REQUIRE(r > 0.0 && c1 > 0.0 && c2 >= 0.0,
                 "filter components must be positive (C2 may be zero)");
  // Z(s) = (1 + s R C1) / (s (C1+C2) + s^2 R C1 C2);
  // C2 = 0 gives the biproper (1 + s R C1)/(s C1).
  const Polynomial num = Polynomial::from_real({1.0, r * c1});
  if (c2 == 0.0) {
    return RationalFunction(num, Polynomial::from_real({0.0, c1}));
  }
  const Polynomial den = Polynomial::from_real({0.0, c1 + c2, r * c1 * c2});
  return RationalFunction(num, den);
}

double ChargePumpFilter::zero_freq() const { return 1.0 / (r * c1); }

double ChargePumpFilter::pole_freq() const {
  if (c2 == 0.0) return std::numeric_limits<double>::infinity();
  return (c1 + c2) / (r * c1 * c2);
}

double ChargePumpFilter::total_cap() const { return c1 + c2; }

ChargePumpFilter ChargePumpFilter::from_frequencies(double wz, double wp,
                                                    double ctot) {
  HTMPLL_REQUIRE(wz > 0.0 && wp > wz, "need 0 < wz < wp");
  HTMPLL_REQUIRE(ctot > 0.0, "total capacitance must be positive");
  const double b = wz / wp;  // = C2 / (C1+C2)
  ChargePumpFilter f;
  f.c2 = ctot * b;
  f.c1 = ctot * (1.0 - b);
  f.r = 1.0 / (wz * f.c1);
  return f;
}

RationalFunction PllParameters::loop_filter_tf() const {
  return RationalFunction::constant(icp) * filter.impedance();
}

RationalFunction PllParameters::open_loop_gain() const {
  // A(s) = (w0/2pi) * (v0/s) * Icp * Z_LF(s)
  const double front = w0 / (2.0 * std::numbers::pi);
  return RationalFunction::constant(front) *
         RationalFunction::integrator(kvco) * loop_filter_tf();
}

RationalFunction PllParameters::lti_closed_loop() const {
  return open_loop_gain().closed_loop_unity_feedback();
}

double PllParameters::period() const { return 2.0 * std::numbers::pi / w0; }

PllParameters make_typical_loop(double w_ug, double w0, double gamma) {
  HTMPLL_REQUIRE(w_ug > 0.0 && w0 > 0.0, "frequencies must be positive");
  HTMPLL_REQUIRE(gamma > 1.0, "zero/pole split gamma must exceed 1");
  const double wz = w_ug / gamma;
  const double wp = gamma * w_ug;

  PllParameters p;
  p.w0 = w0;
  p.kvco = 1.0;
  // A normalized capacitance keeps component values near unity; only the
  // product Icp*Kvco/Ctot matters for A(s).
  p.filter = ChargePumpFilter::from_frequencies(wz, wp, 1.0 / w_ug);

  // |A(j w_ug)| = K' * |1 + j gamma| / (w_ug^2 |1 + j/gamma|) with
  // K' = w0 v0 Icp / (2pi Ctot); solve for Icp so |A(j w_ug)| = 1.
  const double kprime = w_ug * w_ug *
                        std::sqrt((1.0 + 1.0 / (gamma * gamma)) /
                                  (1.0 + gamma * gamma));
  p.icp = kprime * 2.0 * std::numbers::pi * p.filter.total_cap() /
          (p.w0 * p.kvco);
  return p;
}

double typical_loop_lti_phase_margin_deg(double gamma) {
  return (std::atan(gamma) - std::atan(1.0 / gamma)) * 180.0 /
         std::numbers::pi;
}

PllParameters make_second_order_loop(double w_ug, double w0, double gamma) {
  HTMPLL_REQUIRE(w_ug > 0.0 && w0 > 0.0, "frequencies must be positive");
  HTMPLL_REQUIRE(gamma > 0.0, "zero placement gamma must be positive");
  const double wz = w_ug / gamma;

  PllParameters p;
  p.w0 = w0;
  p.kvco = 1.0;
  p.filter.c1 = 1.0 / w_ug;  // normalized capacitance (only ratios matter)
  p.filter.c2 = 0.0;
  p.filter.r = 1.0 / (wz * p.filter.c1);

  // |A(j w_ug)| = K' sqrt(1 + gamma^2) / w_ug^2 with
  // K' = w0 v0 Icp / (2 pi C1); solve for Icp.
  const double kprime = w_ug * w_ug / std::sqrt(1.0 + gamma * gamma);
  p.icp = kprime * 2.0 * std::numbers::pi * p.filter.c1 /
          (p.w0 * p.kvco);
  return p;
}

}  // namespace htmpll

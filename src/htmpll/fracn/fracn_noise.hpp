// Fractional-N quantization noise through the time-varying loop.
//
// The MASH-dithered divider injects the accumulated quantization phase
// error at the PFD -- entering the loop exactly like reference phase
// (sampled once per cycle), so its baseband output transfer is the
// closed-loop H_00 of eq. 38.  The error PSD rises +20(m-1) dB/dec while
// H_00 falls off above the loop bandwidth: total output jitter has a
// bandwidth optimum that the time-varying model (with its extra peaking
// near w0/2) places lower than LTI analysis would.
#pragma once

#include <cstddef>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {

/// Output phase PSD (two-sided, per rad/s) at baseband frequency w from
/// MASH-`order` divider quantization; `t_vco` is the VCO period (the
/// quantization step), the sampling period is the loop's T = 2pi/w0.
double fracn_output_psd(const SamplingPllModel& model, double w,
                        double t_vco, int order = 3);

/// rms output phase over [w_lo, w_hi] from the divider quantization,
/// by log-trapezoid quadrature (same convention as
/// NoiseAnalysis::integrated_rms).
double fracn_output_rms(const SamplingPllModel& model, double t_vco,
                        double w_lo, double w_hi, int order = 3,
                        std::size_t points = 400);

}  // namespace htmpll

#include "htmpll/fracn/fracn_noise.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/fracn/sigma_delta.hpp"
#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {

double fracn_output_psd(const SamplingPllModel& model, double w,
                        double t_vco, int order) {
  HTMPLL_REQUIRE(t_vco > 0.0, "VCO period must be positive");
  const double t_sample = model.parameters().period();
  const std::vector<double> s =
      mash_phase_psd({std::abs(w)}, t_vco, t_sample, order);
  const cplx h = model.baseband_transfer(cplx{0.0, w});
  return std::norm(h) * s[0];
}

double fracn_output_rms(const SamplingPllModel& model, double t_vco,
                        double w_lo, double w_hi, int order,
                        std::size_t points) {
  HTMPLL_REQUIRE(points >= 2, "quadrature needs at least two points");
  const std::vector<double> grid = logspace(w_lo, w_hi, points);
  double integral = 0.0;
  double prev_w = grid[0];
  double prev_s = fracn_output_psd(model, prev_w, t_vco, order);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double s = fracn_output_psd(model, grid[i], t_vco, order);
    integral += 0.5 * (s + prev_s) * (grid[i] - prev_w);
    prev_w = grid[i];
    prev_s = s;
  }
  return std::sqrt(integral / std::numbers::pi);
}

}  // namespace htmpll

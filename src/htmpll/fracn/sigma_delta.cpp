#include "htmpll/fracn/sigma_delta.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

AccumulatorModulator::AccumulatorModulator(std::uint64_t word,
                                           std::uint64_t modulus)
    : word_(word), modulus_(modulus) {
  HTMPLL_REQUIRE(modulus_ > 0, "modulus must be positive");
  HTMPLL_REQUIRE(word_ < modulus_, "word must be below the modulus");
}

int AccumulatorModulator::next() {
  acc_ += word_;
  if (acc_ >= modulus_) {
    acc_ -= modulus_;
    return 1;
  }
  return 0;
}

double AccumulatorModulator::mean() const {
  return static_cast<double>(word_) / static_cast<double>(modulus_);
}

Mash111::Mash111(std::uint64_t word, std::uint64_t modulus)
    : word_(word), modulus_(modulus) {
  HTMPLL_REQUIRE(modulus_ > 0, "modulus must be positive");
  HTMPLL_REQUIRE(word_ < modulus_, "word must be below the modulus");
}

int Mash111::next() {
  auto step = [this](std::uint64_t& acc, std::uint64_t in) -> int {
    acc += in;
    if (acc >= modulus_) {
      acc -= modulus_;
      return 1;
    }
    return 0;
  };
  const int c1 = step(acc1_, word_);
  const int c2 = step(acc2_, acc1_);
  const int c3 = step(acc3_, acc2_);
  const int y = c1 + (c2 - c2_prev_) + (c3 - 2 * c3_prev_ + c3_prev2_);
  c2_prev_ = c2;
  c3_prev2_ = c3_prev_;
  c3_prev_ = c3;
  return y;
}

double Mash111::mean() const {
  return static_cast<double>(word_) / static_cast<double>(modulus_);
}

std::vector<int> Mash111::sequence(std::size_t count) {
  std::vector<int> out(count);
  for (int& v : out) v = next();
  return out;
}

std::vector<double> divider_phase_sequence(Mash111& mod, double t_vco,
                                           std::size_t count) {
  std::vector<double> out(count);
  const double alpha = mod.mean();
  double acc = 0.0;
  for (std::size_t n = 0; n < count; ++n) {
    acc += static_cast<double>(mod.next()) - alpha;
    out[n] = t_vco * acc;
  }
  return out;
}

std::vector<double> mash_phase_psd(const std::vector<double>& w,
                                   double t_vco, double t_sample,
                                   int order) {
  HTMPLL_REQUIRE(order >= 1 && order <= 4, "MASH order 1..4");
  std::vector<double> out(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double hf = 2.0 * std::abs(std::sin(0.5 * w[i] * t_sample));
    out[i] = t_vco * t_vco / 12.0 *
             std::pow(hf, 2.0 * (order - 1)) * t_sample;
  }
  return out;
}

std::vector<double> averaged_periodogram(const std::vector<double>& x,
                                         const std::vector<double>& w,
                                         double t_sample,
                                         std::size_t blocks) {
  HTMPLL_REQUIRE(blocks >= 1, "need at least one block");
  HTMPLL_REQUIRE(x.size() >= blocks * 16, "record too short");
  const std::size_t len = x.size() / blocks;
  std::vector<double> out(w.size(), 0.0);

  // Hann window and its power normalization.
  std::vector<double> win(len);
  double wpow = 0.0;
  for (std::size_t k = 0; k < len; ++k) {
    win[k] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                   static_cast<double>(k) /
                                   static_cast<double>(len - 1)));
    wpow += win[k] * win[k];
  }

  for (std::size_t b = 0; b < blocks; ++b) {
    const double* seg = x.data() + b * len;
    // Remove the segment mean (the shaped error has none, but guard).
    double mean = 0.0;
    for (std::size_t k = 0; k < len; ++k) mean += seg[k];
    mean /= static_cast<double>(len);
    for (std::size_t i = 0; i < w.size(); ++i) {
      cplx bin{0.0};
      for (std::size_t k = 0; k < len; ++k) {
        bin += win[k] * (seg[k] - mean) *
               std::exp(cplx{0.0, -w[i] * t_sample *
                                      static_cast<double>(k)});
      }
      // Two-sided PSD normalization for a windowed DFT bin.
      out[i] += std::norm(bin) * t_sample / wpow;
    }
  }
  for (double& v : out) v /= static_cast<double>(blocks);
  return out;
}

}  // namespace htmpll

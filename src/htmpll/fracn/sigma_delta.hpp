// Sigma-delta modulators for fractional-N division.
//
// A fractional-N synthesizer dithers the feedback divider between
// integer values so its *average* is N + alpha; the dithering pattern's
// quantization error appears at the PFD as a phase-error sequence.  A
// MASH modulator shapes that error to high frequencies where the loop's
// low-pass H_00 (eq. 38) can remove it -- the classic noise-shaping /
// loop-bandwidth trade-off this library's models quantify.
//
// Implemented: the plain first-order accumulator (unshaped, strong
// idle tones) and the MASH-1-1-1 cascade (third-order shaping of the
// division sequence, second-order shaping of the accumulated phase).
// Everything is exact integer arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

/// First-order accumulator divider controller: output carry in {0, 1},
/// mean = word/modulus.
class AccumulatorModulator {
 public:
  AccumulatorModulator(std::uint64_t word, std::uint64_t modulus);

  int next();
  double mean() const;
  std::uint64_t modulus() const { return modulus_; }

 private:
  std::uint64_t word_;
  std::uint64_t modulus_;
  std::uint64_t acc_ = 0;
};

/// MASH-1-1-1: three cascaded accumulators with carry recombination
/// y_n = c1_n + (c2_n - c2_{n-1}) + (c3_n - 2 c3_{n-1} + c3_{n-2}).
/// Output range [-3, 4], mean word/modulus, quantization error shaped
/// (1 - z^-1)^3.
class Mash111 {
 public:
  Mash111(std::uint64_t word, std::uint64_t modulus);

  int next();
  double mean() const;
  std::uint64_t modulus() const { return modulus_; }

  /// Convenience: the next `count` outputs.
  std::vector<int> sequence(std::size_t count);

 private:
  std::uint64_t word_;
  std::uint64_t modulus_;
  std::uint64_t acc1_ = 0, acc2_ = 0, acc3_ = 0;
  int c2_prev_ = 0;
  int c3_prev_ = 0, c3_prev2_ = 0;
};

/// Accumulated divider phase error at the PFD (in seconds, the paper's
/// phase convention): e_n = t_vco * sum_{k<=n} (y_k - alpha).  This is
/// the "reference-like" disturbance sequence the loop sees.
std::vector<double> divider_phase_sequence(Mash111& mod, double t_vco,
                                           std::size_t count);

/// Two-sided PSD (per rad/s, sample rate 1/t_sample) of the accumulated
/// MASH-m phase error: the last accumulator's quantization error is
/// ~uniform white with variance 1/12 VCO-cycles^2, differentiated m
/// times by the MASH and integrated once by the phase accumulation:
///   S_e(w) = t_vco^2 / 12 * |2 sin(w t_sample / 2)|^(2(m-1)) * t_sample
std::vector<double> mash_phase_psd(const std::vector<double>& w,
                                   double t_vco, double t_sample,
                                   int order = 3);

/// Windowed periodogram estimate of a real sequence's two-sided PSD at
/// the given frequencies, averaging `blocks` segments (Welch-style,
/// Hann window, sample period t_sample).  Exposed for testing the
/// shaping law against the actual modulator output.
std::vector<double> averaged_periodogram(const std::vector<double>& x,
                                         const std::vector<double>& w,
                                         double t_sample,
                                         std::size_t blocks);

}  // namespace htmpll

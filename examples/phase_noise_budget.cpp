// Phase-noise budget through the time-varying loop model.
//
// The PLL's raison d'etre (paper, introduction): lock a noisy VCO to a
// clean crystal so that reference noise dominates in-band and the VCO
// only contributes outside the loop bandwidth.  With a sampling PFD the
// transfers come from the HTM closed form, and wideband VCO noise FOLDS
// across reference harmonics -- an effect invisible to LTI analysis.
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/design/design.hpp"
#include "htmpll/noise/noise.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

int main() {
  using namespace htmpll;
  const double f_ref = 10e6;
  const double w0 = 2.0 * std::numbers::pi * f_ref;

  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0));
  const NoiseAnalysis na(model, 16);

  // Input phase PSDs (in the paper's time-normalized phase units):
  // a clean crystal (white floor), a noisy VCO (1/w^2 "white FM" plus a
  // floor), and charge-pump current noise.
  const PowerLawPsd s_ref{1e-24, 0.0, 0.0};
  const PowerLawPsd s_vco{1e-24, 0.0, 1e-12};
  const PowerLawPsd s_icp{1e-26, 0.0, 0.0};

  std::cout << "=== Phase-noise budget, w_UG/w0 = 0.1 ===\n\n";
  Table t({"w/w0", "from_ref", "from_vco", "from_cp", "total",
           "vco_fold_gain"});
  for (double f : {0.001, 0.003, 0.01, 0.03, 0.1, 0.2, 0.4}) {
    const double w = f * w0;
    const double ref = na.output_psd_from_reference(w, s_ref);
    const double vco = na.output_psd_from_vco(w, s_vco);
    const double cp = na.output_psd_from_charge_pump(w, s_icp);
    // How much the harmonic folding adds on top of the m = 0 term.
    const double direct =
        std::norm(na.vco_transfer(0, w)) * s_vco(w);
    t.add_row(std::vector<double>{f, ref, vco, cp, ref + vco + cp,
                                  direct > 0.0 ? vco / direct : 0.0});
  }
  t.print(std::cout);

  std::cout << "\nin-band the reference dominates (loop copies the "
               "crystal); out-of-band the VCO takes over (loop cannot "
               "correct it).\nvco_fold_gain > 1 is the sampling effect: "
               "VCO noise from bands around m*w0 folds into baseband.\n\n";

  const double rms = na.integrated_rms(
      [&](double w) {
        return na.output_psd_total(w, s_ref, s_vco, s_icp);
      },
      1e-3 * w0, 0.49 * w0, 600);
  std::cout << "integrated output phase over [0.001, 0.49] w0: rms = "
            << rms << " (phase-seconds); as a fraction of the period: "
            << rms / model.parameters().period() << "\n";

  // Was 0.1 w0 the right bandwidth for these sources?  Ask the
  // optimizer -- once with the honest time-varying transfers, once with
  // the classical LTI ones.
  JitterOptimizationSpec jspec;
  jspec.w0 = w0;
  jspec.s_ref = s_ref;
  jspec.s_vco = s_vco;
  const JitterOptimizationResult opt =
      optimize_bandwidth_for_jitter(jspec);
  std::cout << "\njitter-optimal bandwidth (time-varying model): w_UG/w0 = "
            << opt.w_ug_tv / w0 << " (rms " << opt.rms_tv << ")\n"
            << "bandwidth LTI analysis would pick: w_UG/w0 = "
            << opt.w_ug_lti / w0 << " -> true rms "
            << opt.rms_at_lti_pick << " ("
            << 100.0 * (opt.penalty - 1.0) << "% worse)\n";
  return 0;
}

// Frequency synthesizer design study.
//
// A synthesizer multiplies a crystal reference up to the RF carrier; the
// divided-down VCO is compared against the reference at the (low)
// reference rate, so the PFD samples slowly and the paper's time-varying
// effects bite hard when the loop bandwidth is pushed for fast settling.
//
// Scenario: 2.4 GHz output from a 1 MHz channel-spacing reference
// (divider N = 2400).  Marketing wants the widest loop bandwidth
// possible (settling!); this study shows what LTI analysis would sign
// off on versus what the sampled loop actually tolerates, and uses the
// time-varying-aware design helper to pick a safe bandwidth.
#include <iostream>
#include <numbers>

#include "htmpll/design/design.hpp"
#include "htmpll/util/table.hpp"

int main() {
  using namespace htmpll;

  const double f_ref = 1e6;  // channel spacing = PFD comparison rate
  const double w0 = 2.0 * std::numbers::pi * f_ref;

  std::cout << "=== 2.4 GHz synthesizer, 1 MHz reference (N = 2400) ===\n\n";
  std::cout << "sweep of candidate loop bandwidths (target PM 60 deg):\n\n";

  DesignSpec spec;
  spec.w0 = w0;
  spec.target_pm_deg = 60.0;
  spec.kvco = 1.0;   // normalized VCO gain (prescaler absorbed, eq. 14-15)
  spec.ctot = 1e-9;

  Table t({"w_UG/w0", "LTI_PM_deg", "eff_PM_deg", "LTI says", "HTM says"});
  for (double ratio : {0.02, 0.05, 0.1, 0.15, 0.2, 0.25}) {
    spec.target_w_ug = ratio * w0;
    const DesignResult r = design_classical(spec);
    t.add_row({Table::fmt(ratio), Table::fmt(r.margins.lti_phase_margin_deg),
               r.margins.eff_found
                   ? Table::fmt(r.margins.eff_phase_margin_deg)
                   : "unstable",
               r.meets_spec_lti ? "ship it" : "reject",
               r.meets_spec_effective ? "ship it" : "REJECT"});
  }
  t.print(std::cout);

  std::cout << "\nLTI analysis signs off on every row -- the sampled loop "
               "disagrees above a few percent of w0.\n\n";

  // Let the aware designer pick the fastest safe bandwidth for a
  // realistic (slacked) spec.
  spec.target_w_ug = 0.25 * w0;
  spec.target_pm_deg = 50.0;
  const DesignResult safe = design_time_varying_aware(spec);
  std::cout << "time-varying-aware design for PM >= 50 deg:\n"
            << "  w_UG = " << safe.margins.lti_crossover / w0
            << " * w0  (requested 0.25 * w0)\n"
            << "  effective PM = " << safe.margins.eff_phase_margin_deg
            << " deg, z-domain stable: "
            << (safe.z_domain_stable ? "yes" : "no") << "\n"
            << "  components: R = " << safe.params.filter.r
            << " ohm, C1 = " << safe.params.filter.c1
            << " F, C2 = " << safe.params.filter.c2
            << " F, Icp = " << safe.params.icp << " A\n";
  return 0;
}

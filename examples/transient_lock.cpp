// Behavioral simulator demo: lock acquisition from a frequency offset,
// then a small-signal modulation probe compared against the HTM
// prediction -- the full verification loop of the paper's Section 5 in
// one program.
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/table.hpp"

int main() {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // T = 1 (normalized time)
  const cplx j{0.0, 1.0};
  const PllParameters params = make_typical_loop(0.1 * w0, w0);

  std::cout << "=== 1) lock acquisition from a 3% frequency offset ===\n\n";
  PllTransientSim sim(params);
  sim.set_initial_frequency_offset(0.03);
  Table acq({"t/T", "theta/T", "control_y", "max_pulse_width/T"});
  for (int chunk = 0; chunk < 10; ++chunk) {
    // Fine-grained early (the pull-in happens within ~10 periods for
    // this bandwidth), then coarser to confirm the lock holds.
    sim.run_periods(chunk < 6 ? 2.0 : 50.0);
    acq.add_row(std::vector<double>{sim.time(), sim.theta(),
                                    sim.control_output(),
                                    sim.max_recent_pulse_width()});
  }
  acq.print(std::cout);
  std::cout << (sim.is_locked(1e-4) ? "\nlocked.\n" : "\nnot locked!\n");
  std::cout << "PFD events processed: " << sim.event_count() << "\n\n";

  std::cout << "=== 2) small-signal probe vs HTM prediction ===\n\n";
  const SamplingPllModel model(params);
  Table t({"w/w0", "|H00| simulated", "|H00| HTM", "|H00| LTI",
           "sim-vs-HTM err"});
  for (double f : {0.02, 0.05, 0.1, 0.2}) {
    ProbeOptions opts;
    opts.settle_periods = 300.0;
    opts.measure_periods = 16;
    const TransferMeasurement meas =
        measure_baseband_transfer(params, f * w0, opts);
    const cplx htm = model.baseband_transfer(j * (f * w0));
    const cplx lti = model.lti_baseband_transfer(j * (f * w0));
    t.add_row(std::vector<double>{
        f, std::abs(meas.value), std::abs(htm), std::abs(lti),
        std::abs(meas.value - htm) / std::abs(htm)});
  }
  t.print(std::cout);
  std::cout << "\nthe HTM model predicts the simulated (flip-flop PFD, "
               "finite pulse width) loop to a couple of percent.\n";
  return 0;
}

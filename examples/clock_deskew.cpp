// Clock-buffering / deskew PLL (the digital application from the
// paper's introduction).
//
// A deskew PLL regenerates a chip-internal clock phase-aligned to the
// I/O bus clock.  Two specs dominate:
//   * jitter peaking -- upstream jitter must not be amplified, or
//     cascaded PLLs down the clock tree multiply it up;
//   * bandwidth -- wide enough to track supply-induced drift.
// Jitter peaking is exactly the passband-edge peaking of |H_00| that the
// time-varying model predicts grows with w_UG/w0 (Fig. 6); LTI analysis
// underestimates it.  This example finds the widest bandwidth meeting a
// 1 dB peaking spec under both models.
#include <iostream>
#include <numbers>

#include "htmpll/core/stability.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace {

/// Peaking of the classical LTI closed loop over (0, w0/2).
double lti_peaking_db(const htmpll::PllParameters& p) {
  using namespace htmpll;
  const RationalFunction cl = p.lti_closed_loop();
  const std::vector<double> grid = logspace(1e-4 * p.w0, 0.5 * p.w0, 600);
  double ref = magnitude_db(cl(cplx{0.0, grid[0]}));
  double peak = ref;
  for (double w : grid) {
    peak = std::max(peak, magnitude_db(cl(cplx{0.0, w})));
  }
  return peak - ref;
}

}  // namespace

int main() {
  using namespace htmpll;
  const double f_bus = 200e6;  // bus clock = reference
  const double w0 = 2.0 * std::numbers::pi * f_bus;

  std::cout << "=== 200 MHz clock deskew PLL: jitter peaking budget 1.7 dB "
               "===\n\n";

  // The gamma = 4 loop carries ~1.4 dB of inherent (LTI) peaking; the
  // budget leaves ~0.3 dB of headroom for sampling effects.
  const double budget_db = 1.7;
  const std::vector<double> ratios{0.02, 0.05, 0.08, 0.12, 0.16, 0.2, 0.25};
  std::vector<double> lti_pk, htm_pk;
  Table t({"w_UG/w0", "LTI_peaking_dB", "HTM_peaking_dB", "LTI verdict",
           "HTM verdict"});
  for (double ratio : ratios) {
    const PllParameters params = make_typical_loop(ratio * w0, w0);
    const SamplingPllModel model(params);
    lti_pk.push_back(lti_peaking_db(params));
    htm_pk.push_back(closed_loop_summary(model).peaking_db);
    t.add_row({Table::fmt(ratio), Table::fmt(lti_pk.back()),
               Table::fmt(htm_pk.back()),
               lti_pk.back() <= budget_db ? "pass" : "fail",
               htm_pk.back() <= budget_db ? "pass" : "FAIL"});
  }
  t.print(std::cout);

  // Widest bandwidth each model signs off on (scan from the top).
  double best_lti = 0.0, best_htm = 0.0;
  for (std::size_t i = ratios.size(); i-- > 0;) {
    if (best_lti == 0.0 && lti_pk[i] <= budget_db) best_lti = ratios[i];
    if (best_htm == 0.0 && htm_pk[i] <= budget_db) best_htm = ratios[i];
  }

  std::cout << "\nwidest bandwidth meeting the spec:\n"
            << "  per LTI analysis:        w_UG = " << best_lti << " * w0\n"
            << "  per time-varying model:  w_UG = " << best_htm << " * w0\n";
  if (best_lti > best_htm) {
    std::cout << "an LTI-based sign-off would overdrive the loop by "
              << best_lti / best_htm << "x in bandwidth -- the deskew "
              << "chain would amplify bus jitter.\n";
  }
  return 0;
}

// Lab workflow: identify a PLL's loop parameters from bench
// measurements of its closed-loop phase transfer.
//
// A "device under test" (here: the behavioral simulator standing in for
// hardware, with parameters we pretend not to know) is driven with
// small reference phase modulation at a handful of frequencies; the
// complex response H_00(j w) is captured with a single-bin DFT, and the
// time-varying model is fitted to the data by Gauss-Newton.  Fitting
// the classical LTI model to the same data shows the structural bias
// the paper warns about: the measured response of a fast loop contains
// aliasing terms no LTI transfer function can represent.
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/calibration.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/table.hpp"

int main() {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // normalized T = 1

  // The "unknown" device under test.
  const double true_ratio = 0.18;
  const double true_gamma = 5.0;
  const PllParameters dut = make_typical_loop(true_ratio * w0, w0,
                                              true_gamma);

  std::cout << "=== Step 1: measure the DUT at 5 frequencies ===\n\n";
  const std::vector<double> freqs{0.03 * w0, 0.08 * w0, 0.15 * w0,
                                  0.25 * w0, 0.38 * w0};
  CVector measured;
  Table meas({"w/w0", "|H00|", "arg deg"});
  for (double w : freqs) {
    ProbeOptions opts;
    opts.settle_periods = 350.0;
    opts.measure_periods = 20;
    const cplx h = measure_baseband_transfer(dut, w, opts).value;
    measured.push_back(h);
    meas.add_row(std::vector<double>{
        w / w0, std::abs(h),
        std::arg(h) * 180.0 / std::numbers::pi});
  }
  meas.print(std::cout);

  std::cout << "\n=== Step 2: fit the time-varying model ===\n\n";
  const LoopFitResult tv = fit_typical_loop(freqs, measured, w0);
  std::cout << "  fitted w_UG/w0 = " << tv.w_ug / w0 << "  (true "
            << true_ratio << ")\n"
            << "  fitted gamma   = " << tv.gamma << "  (true "
            << true_gamma << ")\n"
            << "  rms residual   = " << tv.rms_residual << " ("
            << tv.iterations << " iterations)\n";

  std::cout << "\n=== Step 3: try the same with the LTI model ===\n\n";
  LoopFitOptions lti_opts;
  lti_opts.use_lti_model = true;
  const LoopFitResult lti = fit_typical_loop(freqs, measured, w0,
                                             lti_opts);
  std::cout << "  fitted w_UG/w0 = " << lti.w_ug / w0
            << ", gamma = " << lti.gamma << "\n"
            << "  rms residual   = " << lti.rms_residual << "  ("
            << lti.rms_residual / std::max(tv.rms_residual, 1e-300)
            << "x worse than the TV fit)\n";
  std::cout << "\nthe LTI model cannot represent the measured aliasing "
               "terms of a fast loop: its residual floor is structural, "
               "not noise.\n";
  return 0;
}

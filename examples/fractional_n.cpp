// Fractional-N synthesizer design walk-through (umbrella-header demo).
//
// Task: synthesize 2.4321 GHz from a 24 MHz crystal -- divider
// N + alpha = 101.3375, realized with a MASH-1-1-1 dithering the
// divider.  The walk-through: pick the modulator word, inspect the
// dithering sequence, then budget the loop bandwidth against the two
// competing noise mechanisms (VCO random walk wants wide, MASH
// quantization noise wants narrow).
#include <iostream>
#include <numbers>

#include "htmpll/htmpll.hpp"

int main() {
  using namespace htmpll;
  const double f_ref = 24e6;
  const double f_out = 2.4321e9;
  const double w0 = 2.0 * std::numbers::pi * f_ref;
  const double t_ref = 1.0 / f_ref;

  const double n_total = f_out / f_ref;
  const auto n_int = static_cast<std::uint64_t>(n_total);
  const std::uint64_t modulus = 1u << 24;
  const auto word = static_cast<std::uint64_t>(
      (n_total - static_cast<double>(n_int)) *
      static_cast<double>(modulus));

  std::cout << "=== Fractional-N synthesizer: " << f_out / 1e9
            << " GHz from " << f_ref / 1e6 << " MHz ===\n\n";
  std::cout << "divider N = " << n_int << " + " << word << "/" << modulus
            << " (alpha = "
            << static_cast<double>(word) / static_cast<double>(modulus)
            << ")\n\n";

  Mash111 mash(word, modulus);
  std::cout << "first dithering offsets: ";
  for (int i = 0; i < 16; ++i) std::cout << mash.next() << ' ';
  std::cout << "...\n";
  {
    Mash111 check(word, modulus);
    const auto seq = check.sequence(1u << 15);
    double mean = 0.0;
    for (int y : seq) mean += y;
    std::cout << "sequence mean: "
              << mean / static_cast<double>(seq.size())
              << " (target " << check.mean() << ")\n\n";
  }

  // Noise budget: VCO random walk vs MASH quantization.
  const double t_vco = t_ref / n_total;
  const double ref_white = 1e-26;
  // VCO random walk crossing the reference floor at 0.05 w0: analog
  // noise alone would want the loop about that wide.
  const PowerLawPsd s_vco{0.0, 0.0,
                          ref_white * (0.05 * w0) * (0.05 * w0)};

  std::cout << "bandwidth sweep (output phase rms, seconds):\n";
  Table t({"w_UG/w0", "vco+ref noise", "MASH noise", "total"});
  double best_total = 1e300, best_ratio = 0.0;
  for (double ratio : {0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2}) {
    JitterOptimizationSpec jspec;
    jspec.w0 = w0;
    jspec.s_ref = PowerLawPsd{ref_white, 0.0, 0.0};
    jspec.s_vco = s_vco;
    const double analog = output_jitter_tv(jspec, ratio * w0);
    const SamplingPllModel model(make_typical_loop(ratio * w0, w0));
    const double quant =
        fracn_output_rms(model, t_vco, 1e-3 * w0, 0.49 * w0);
    const double total = std::sqrt(analog * analog + quant * quant);
    if (total < best_total) {
      best_total = total;
      best_ratio = ratio;
    }
    t.add_row(std::vector<double>{ratio, analog, quant, total});
  }
  t.print(std::cout);
  std::cout << "\nbest bandwidth: w_UG/w0 = " << best_ratio
            << " (total rms " << best_total << " s = "
            << best_total / t_ref << " of a reference period)\n";
  std::cout << "the MASH noise column is why fractional-N parts ship "
               "with much narrower loops than integer-N parts of the "
               "same reference.\n";
  return 0;
}

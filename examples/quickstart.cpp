// Quickstart: model a charge-pump PLL with a sampling PFD and compare
// what classical LTI analysis says against the time-varying (HTM) truth.
//
//   1. describe the loop (reference rate, charge pump, filter, VCO)
//   2. build a SamplingPllModel
//   3. ask for margins, closed-loop response, and the stability verdict
#include <iostream>
#include <numbers>

#include "htmpll/core/stability.hpp"
#include "htmpll/lti/bode.hpp"

int main() {
  using namespace htmpll;

  // A 10 MHz reference; loop crossover designed at 1.5 MHz -- fast
  // enough that the sampling nature of the PFD matters.
  const double f_ref = 10e6;
  const double w0 = 2.0 * std::numbers::pi * f_ref;
  const double w_ug = 0.15 * w0;

  // make_typical_loop places the filter zero at w_ug/4, the parasitic
  // pole at 4*w_ug and sizes the charge pump for |A(j w_ug)| = 1.
  const PllParameters params = make_typical_loop(w_ug, w0);
  std::cout << "loop components: R = " << params.filter.r
            << " ohm, C1 = " << params.filter.c1
            << " F, C2 = " << params.filter.c2
            << " F, Icp = " << params.icp << " A\n";
  std::cout << "open-loop gain A(s) = "
            << params.open_loop_gain().to_string() << "\n\n";

  const SamplingPllModel model(params);
  const EffectiveMargins m = effective_margins(model);

  std::cout << "classical LTI analysis:   crossover "
            << m.lti_crossover / w0 << " * w0, phase margin "
            << m.lti_phase_margin_deg << " deg\n";
  std::cout << "time-varying (HTM) truth: crossover "
            << m.eff_crossover / w0 << " * w0, phase margin "
            << m.eff_phase_margin_deg << " deg\n\n";

  const ClosedLoopSummary cl = closed_loop_summary(model);
  std::cout << "closed-loop peaking: " << cl.peaking_db << " dB at w = "
            << cl.peak_freq / w0 << " * w0\n";

  // Spot-check the response at a few frequencies.
  const cplx j{0.0, 1.0};
  std::cout << "\n   w/w0    |H00| HTM   |H00| LTI\n";
  for (double f : {0.01, 0.05, 0.15, 0.3}) {
    const cplx s = j * (f * w0);
    std::cout << "   " << f << "     "
              << std::abs(model.baseband_transfer(s)) << "      "
              << std::abs(model.lti_baseband_transfer(s)) << "\n";
  }

  std::cout << "\nhalf-rate criterion lambda(j w0/2) = "
            << half_rate_lambda(model)
            << (predicts_half_rate_instability(model)
                    ? "  -> UNSTABLE sampled loop!\n"
                    : "  -> stable (needs > -1)\n");
  return 0;
}

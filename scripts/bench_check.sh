#!/usr/bin/env bash
# Builds the sweep benchmark in Release and verifies the parallel sweep
# engine: every batched path must be bit-identical to the scalar path,
# and on a machine with >= 4 hardware threads the pool sweep must not be
# slower than the 1-thread sweep (bench_sweep --check enforces both; on
# narrower machines only bit-identity is enforced).
#
# Usage: scripts/bench_check.sh [build-dir] [report.json]
set -euo pipefail

BUILD="${1:-build-release}"
REPORT="${2:-BENCH_sweep.json}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_sweep -j > /dev/null

"$BUILD/bench/bench_sweep" "$REPORT" --check
echo "bench_check: OK ($REPORT)"

#!/usr/bin/env bash
# Builds the benchmark gates in Release and verifies the engines:
#
#  * bench_sweep: every scalar-forced batched frequency-domain path must
#    be bit-identical to the point-wise path, the eval-plan grids must
#    agree with the point-wise path to <= 1e-12 relative error and run
#    at >= 0.97x the point-wise loop, and on a machine with >= 4
#    hardware threads the pool sweep must not be slower than the
#    1-thread sweep (--check enforces the timing gates; bit-identity and
#    tolerance are enforced everywhere).
#  * bench_kernels: the compiled eval plan must evaluate the exact-method
#    2000-point lambda sweep at >= 1.5x the scalar-forced grid with
#    <= 1e-12 max relative error.
#  * bench_transient: the cold Pade probe path must be bit-identical to
#    the seed behavior (single-entry propagator cache, Van Loan expm
#    propagators), the spectral default must agree with the Pade path to
#    <= 1e-10, run the cold sweep >= 2x faster than the seed and drive
#    the probe sweep's expm evaluations to ~zero, warm-start
#    measurements must agree with cold ones within the probe tolerance,
#    and caching + warm start must beat the seed baseline (verdict field
#    in BENCH_transient.json).
#  * forced-Pade transient: bench_transient re-runs with
#    HTMPLL_SPECTRAL=0, so the seed bit-identity contract is also gated
#    with the spectral engine compiled in but switched off.
#  * report shape: both BENCH_*.json files must carry the fields the
#    downstream tooling reads (bit-identity verdicts, telemetry,
#    obs_overhead); a missing field fails with the gate name and the
#    expected vs actual value instead of a silent pass.
#  * bench_noise: output_psd_grid must agree with the pointwise
#    output_psd_total loop to <= 1e-10 relative error and run at >= 3x
#    its speed -- on the default (SIMD-dispatched), the scalar-forced
#    (HTMPLL_SIMD=0) and the instrumented (HTMPLL_OBS=1) paths alike.
#  * forced-scalar dispatch: bench_kernels and bench_noise re-run with
#    HTMPLL_SIMD=0, so the portable kernels keep their own gates even
#    when the AVX2 path exists.
#  * -DHTMPLL_SIMD=OFF: a separate configure/build in "$BUILD-nosimd"
#    proves the stub TU links and the same noise/kernel gates hold when
#    the vector variants are compiled out entirely.
#  * instrumentation overhead: scripts/check_overhead.sh gates the
#    obs_overhead sections of the sweep AND noise reports.
#  * health manifests: every bench's .manifest.json must carry the
#    "health" section (diagnostic event tallies, gauges, span
#    aggregates), and the reference-loop transient manifest must report
#    zero spectral->Pade fallback events when the spectral engine is
#    live.
#  * bench history: scripts/bench_history.py must ingest the reports
#    against a fresh baseline (exit 0), then again against itself (no
#    regression, exit 0); the run is also appended to bench/history.jsonl.
#
#  * bench_stability: the batched design-space sweep (grid-first
#    crossover + masked lockstep Newton through the eval plan) must run
#    >= 3x the scalar probe chains on the 64-point sweep with pole /
#    crossover parity <= 1e-9 relative, lambda_derivative_grid must
#    agree with the scalar analytic derivative to <= 1e-12, and the
#    scalar-forced (use_eval_plan=false) margins/poles must be
#    bit-identical to the seed implementation.
#
#  * bench_mc: the lockstep SoA ensemble engine must run the 64-member
#    held-noise Monte Carlo ensemble >= 2.5x faster than the per-member
#    scalar chain at equal thread count, and the ensemble NoiseRunStats
#    / acquisition / step-response outputs must be bitwise identical to
#    the scalar chain on both the default and the forced-scalar
#    (use_ensemble_engine=false) paths.  A reduced-horizon HTMPLL_SIMD=0
#    re-run keeps the same parity gates on the portable kernels.
#
# Usage: scripts/bench_check.sh [--smoke] [build-dir] [sweep-report.json] [transient-report.json] [kernels-report.json] [noise-report.json] [stability-report.json] [mc-report.json]
#   --smoke: end-to-end bench-shape check for PRs -- reduced reps where
#            supported, gates relaxed to parity / tolerance /
#            bit-identity only (no timing gates, no overhead check, no
#            history ingestion, no -DHTMPLL_SIMD=OFF rebuild).
set -euo pipefail

SMOKE=0
POS=()
for arg in "$@"; do
  if [ "$arg" = "--smoke" ]; then
    SMOKE=1
  else
    POS+=("$arg")
  fi
done
BUILD="${POS[0]:-build-release}"
REPORT="${POS[1]:-BENCH_sweep.json}"
TREPORT="${POS[2]:-BENCH_transient.json}"
KREPORT="${POS[3]:-BENCH_kernels.json}"
NREPORT="${POS[4]:-BENCH_noise.json}"
SREPORT="${POS[5]:-BENCH_stability.json}"
MREPORT="${POS[6]:-BENCH_mc.json}"

# The benches enforce parity / tolerance / bit-identity unconditionally;
# --check adds their timing gates, which smoke mode leaves out.
CHECK="--check"
if [ "$SMOKE" = 1 ]; then CHECK=""; fi

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_sweep bench_transient bench_kernels \
      bench_noise bench_stability bench_mc -j > /dev/null

"$BUILD/bench/bench_sweep" "$REPORT" $CHECK
"$BUILD/bench/bench_transient" "$TREPORT" $CHECK
"$BUILD/bench/bench_kernels" "$KREPORT" $CHECK
"$BUILD/bench/bench_noise" "$NREPORT" $CHECK
if [ "$SMOKE" = 1 ]; then
  "$BUILD/bench/bench_stability" "$SREPORT" --check --smoke
  "$BUILD/bench/bench_mc" "$MREPORT" --check --smoke
else
  "$BUILD/bench/bench_stability" "$SREPORT" --check
  "$BUILD/bench/bench_mc" "$MREPORT" --check
fi

# The same gates must hold with the SIMD dispatch forced to the
# portable scalar kernels and with the obs layer live.
HTMPLL_SIMD=0 "$BUILD/bench/bench_kernels" "${KREPORT%.json}_scalar.json" $CHECK
HTMPLL_SIMD=0 "$BUILD/bench/bench_noise" "${NREPORT%.json}_scalar.json" $CHECK
# Ensemble parity must also hold on the portable batch kernels; the
# reduced-horizon smoke run keeps the bitwise gates without timing the
# scalar-dispatch engine against the 2.5x target.
HTMPLL_SIMD=0 "$BUILD/bench/bench_mc" "${MREPORT%.json}_scalar.json" \
  --check --smoke
HTMPLL_OBS=1 "$BUILD/bench/bench_noise" "${NREPORT%.json}_obs.json" $CHECK

# Forced-Pade transient run: with the spectral engine switched off the
# default path IS the seed path, and the bit-identity gates must still
# hold (the spectral speed gates are skipped by the bench itself).
HTMPLL_SPECTRAL=0 "$BUILD/bench/bench_transient" \
  "${TREPORT%.json}_nospectral.json" $CHECK

FAILURES=0

# fail <gate> <file> <expected> <actual>
fail() {
  echo "bench_check: FAIL [$1] in $2" >&2
  echo "  expected: $3" >&2
  echo "  actual:   $4" >&2
  FAILURES=$((FAILURES + 1))
}

# field <file> <key> -> first "key": value in the file, '' when absent.
field() {
  awk -v key="\"$2\"" '$1 == key ":" {
    v = $2
    gsub(/,$/, "", v)
    print v
    exit
  }' "$1"
}

# require_true <gate> <file> <key>
require_true() {
  local v
  v="$(field "$2" "$3")"
  if [ -z "$v" ]; then
    fail "$1" "$2" "\"$3\": true" "field missing"
  elif [ "$v" != "true" ]; then
    fail "$1" "$2" "\"$3\": true" "\"$3\": $v"
  fi
}

# require_section <gate> <file> <key>
require_section() {
  if ! grep -q "\"$3\":" "$2"; then
    fail "$1" "$2" "a \"$3\" section" "section missing"
  fi
}

# require_ge <gate> <file> <key> <min>
require_ge() {
  local v
  v="$(field "$2" "$3")"
  if [ -z "$v" ]; then
    fail "$1" "$2" "\"$3\" >= $4" "field missing"
  elif ! awk -v v="$v" -v min="$4" 'BEGIN { exit !(v + 0 >= min + 0) }'; then
    fail "$1" "$2" "\"$3\" >= $4" "\"$3\": $v"
  fi
}

# require_le <gate> <file> <key> <max>
require_le() {
  local v
  v="$(field "$2" "$3")"
  if [ -z "$v" ]; then
    fail "$1" "$2" "\"$3\" <= $4" "field missing"
  elif ! awk -v v="$v" -v max="$4" 'BEGIN { exit !(v + 0 <= max + 0) }'; then
    fail "$1" "$2" "\"$3\" <= $4" "\"$3\": $v"
  fi
}

for f in "$REPORT" "$TREPORT" "$KREPORT" "$NREPORT" "$SREPORT" \
         "$MREPORT"; do
  if [ ! -f "$f" ]; then
    fail "report-exists" "$f" "file written by the bench" "no such file"
  fi
done

if [ -f "$REPORT" ]; then
  require_true sweep-bit-identical "$REPORT" bit_identical
  require_true sweep-plan-tolerance "$REPORT" plan_within_tolerance
  if [ "$SMOKE" = 0 ]; then
    require_ge sweep-plan-speedup "$REPORT" grid_speedup_vs_pointwise 0.97
  fi
  require_section sweep-telemetry "$REPORT" telemetry
  require_section sweep-obs-overhead "$REPORT" obs_overhead
  require_section sweep-baseband "$REPORT" baseband_sweep
fi

if [ -f "$KREPORT" ]; then
  require_true kernels-plan-tolerance "$KREPORT" plan_within_tolerance
  if [ "$SMOKE" = 0 ]; then
    require_ge kernels-plan-speedup "$KREPORT" plan_speedup_vs_scalar 1.5
  fi
  require_le kernels-plan-rel-err "$KREPORT" plan_max_rel_err 1e-12
  require_section kernels-eval-plan "$KREPORT" eval_plan
  require_section kernels-micro "$KREPORT" kernels
  require_section kernels-telemetry "$KREPORT" telemetry
fi

if [ -f "$SREPORT" ]; then
  require_true stability-parity "$SREPORT" parity_pass
  require_le stability-crossover-rel-err "$SREPORT" crossover_max_rel_err 1e-9
  require_le stability-margin-rel-err "$SREPORT" margin_max_rel_err 1e-9
  require_le stability-pole-rel-err "$SREPORT" pole_max_rel_err 1e-9
  require_true stability-derivative-tolerance "$SREPORT" within_tolerance
  require_le stability-derivative-impulse "$SREPORT" impulse_max_rel_err 1e-12
  require_le stability-derivative-zoh "$SREPORT" zoh_max_rel_err 1e-12
  require_true stability-margins-bit-identical "$SREPORT" \
    margins_bit_identical
  require_true stability-poles-bit-identical "$SREPORT" poles_bit_identical
  if [ "$SMOKE" = 0 ]; then
    require_ge stability-batched-speedup "$SREPORT" \
      batched_speedup_vs_scalar 3
  fi
  require_section stability-design-sweep "$SREPORT" design_sweep
  require_section stability-derivative "$SREPORT" derivative
  require_section stability-scalar-fallback "$SREPORT" scalar_fallback
  require_section stability-telemetry "$SREPORT" telemetry
fi

for mf in "$MREPORT" "${MREPORT%.json}_scalar.json"; do
  if [ -f "$mf" ]; then
    require_true mc-noise-bitwise "$mf" noise_parity_bitwise
    require_true mc-forced-scalar-bitwise "$mf" forced_scalar_bitwise
    require_true mc-acquisition-bitwise "$mf" acquisition_parity_bitwise
    require_true mc-step-response-bitwise "$mf" step_response_parity_bitwise
    require_section mc-section "$mf" mc
    require_section mc-telemetry "$mf" telemetry
  fi
done
if [ "$SMOKE" = 0 ]; then
  require_ge mc-ensemble-speedup "$MREPORT" ensemble_speedup_vs_scalar 2.5
fi

if [ -f "$TREPORT" ]; then
  require_true transient-bit-identical "$TREPORT" default_bit_identical
  require_true transient-warm-tolerance "$TREPORT" warm_within_tolerance
  require_section transient-telemetry "$TREPORT" telemetry
  require_section transient-probe-sweep "$TREPORT" probe_sweep
  # Spectral gates apply only when the engine is live (HTMPLL_SPECTRAL
  # may force it off for the whole environment).
  if [ "$(field "$TREPORT" spectral_enabled)" = "true" ]; then
    require_true transient-spectral-tolerance "$TREPORT" \
      spectral_within_tolerance
    require_le transient-spectral-rel-err "$TREPORT" spectral_max_rel_err 1e-10
    if [ "$SMOKE" = 0 ]; then
      require_ge transient-spectral-speedup "$TREPORT" \
        spectral_cold_speedup_vs_seed 2
    fi
    require_le transient-spectral-expm-evals "$TREPORT" \
      probe_sweep_expm_evals 32
  fi
fi

# The forced-Pade re-run must report the engine off and still clear the
# seed bit-identity and warm-start contracts.
TNOSPEC="${TREPORT%.json}_nospectral.json"
if [ -f "$TNOSPEC" ]; then
  require_true transient-nospectral-bit-identical "$TNOSPEC" \
    default_bit_identical
  require_true transient-nospectral-warm-tolerance "$TNOSPEC" \
    warm_within_tolerance
  v="$(field "$TNOSPEC" spectral_enabled)"
  if [ "$v" != "false" ]; then
    fail transient-nospectral-disabled "$TNOSPEC" \
      "\"spectral_enabled\": false" "\"spectral_enabled\": ${v:-missing}"
  fi
else
  fail report-exists "$TNOSPEC" "file written by the bench" "no such file"
fi

for nf in "$NREPORT" "${NREPORT%.json}_scalar.json" "${NREPORT%.json}_obs.json"; do
  if [ -f "$nf" ]; then
    require_true noise-grid-tolerance "$nf" grid_within_tolerance
    if [ "$SMOKE" = 0 ]; then
      require_ge noise-grid-speedup "$nf" grid_speedup_vs_pointwise 3
    fi
    require_le noise-grid-rel-err "$nf" grid_max_rel_err 1e-10
    require_section noise-output-psd "$nf" output_psd
    require_section noise-surfaces "$nf" surfaces
    require_section noise-telemetry "$nf" telemetry
  fi
done
require_true noise-obs-bit-identical "$NREPORT" bit_identical
require_section noise-obs-overhead "$NREPORT" obs_overhead

# Every bench manifest must carry the diagnostics/health section.
for f in "$REPORT" "$TREPORT" "$KREPORT" "$NREPORT" "$SREPORT" \
         "$MREPORT"; do
  m="$f.manifest.json"
  if [ -f "$m" ]; then
    require_section manifest-health "$m" health
    require_section manifest-health-gauges "$m" gauges
  else
    fail manifest-exists "$m" "manifest written by the bench" "no such file"
  fi
done

# On the reference loop with the spectral engine live, every propagator
# factorization must succeed: any spectral->Pade fallback event in the
# transient manifest is unexpected.
if [ "$(field "$TREPORT" spectral_enabled)" = "true" ]; then
  TM="$TREPORT.manifest.json"
  if [ -f "$TM" ]; then
    require_le transient-no-pade-defective "$TM" pade_fallback.defective 0
    require_le transient-no-pade-not-converged "$TM" \
      pade_fallback.not_converged 0
    require_le transient-no-pade-ill-conditioned "$TM" \
      pade_fallback.ill_conditioned 0
  fi
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "bench_check: $FAILURES gate(s) failed" >&2
  exit 1
fi

if [ "$SMOKE" = 1 ]; then
  echo "bench_check: OK [smoke] ($REPORT, $TREPORT, $KREPORT, $NREPORT, $SREPORT, $MREPORT)"
  exit 0
fi

"$(dirname "$0")/check_overhead.sh" "$BUILD" "$REPORT" "$NREPORT" --no-run

# Bench history: a fresh baseline must ingest cleanly (exit 0), and an
# immediate re-run of the same reports must not register a regression.
HISTORY_TMP="$(mktemp)"
trap 'rm -f "$HISTORY_TMP"' EXIT
python3 "$(dirname "$0")/bench_history.py" --history "$HISTORY_TMP" \
  "$REPORT" "$TREPORT" "$KREPORT" "$NREPORT" "$SREPORT" "$MREPORT"
python3 "$(dirname "$0")/bench_history.py" --history "$HISTORY_TMP" \
  "$REPORT" "$TREPORT" "$KREPORT" "$NREPORT" "$SREPORT" "$MREPORT"
# Record this run in the persistent history keyed by git describe.
python3 "$(dirname "$0")/bench_history.py" \
  "$REPORT" "$TREPORT" "$KREPORT" "$NREPORT" "$SREPORT" "$MREPORT"

# A build with the vector kernel TU compiled out entirely: the stub
# path must link and the portable kernels must clear the same gates.
NOSIMD_BUILD="$BUILD-nosimd"
cmake -B "$NOSIMD_BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
      -DHTMPLL_SIMD=OFF > /dev/null
cmake --build "$NOSIMD_BUILD" --target bench_kernels bench_noise -j > /dev/null
"$NOSIMD_BUILD/bench/bench_kernels" "${KREPORT%.json}_nosimd.json" --check
"$NOSIMD_BUILD/bench/bench_noise" "${NREPORT%.json}_nosimd.json" --check

echo "bench_check: OK ($REPORT, $TREPORT, $KREPORT, $NREPORT, $SREPORT, $MREPORT)"

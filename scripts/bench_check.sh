#!/usr/bin/env bash
# Builds the benchmark gates in Release and verifies both engines:
#
#  * bench_sweep: every batched frequency-domain path must be
#    bit-identical to the scalar path, and on a machine with >= 4
#    hardware threads the pool sweep must not be slower than the
#    1-thread sweep (--check enforces both; on narrower machines only
#    bit-identity is enforced).
#  * bench_transient: the default (cold) transient probe path must be
#    bit-identical to the seed behavior (single-entry propagator cache),
#    warm-start measurements must agree with cold ones within the probe
#    tolerance, and caching + warm start must beat the seed baseline
#    (verdict field in BENCH_transient.json).
#  * report shape: both BENCH_*.json files must carry the fields the
#    downstream tooling reads (bit-identity verdicts, telemetry,
#    obs_overhead); a missing field fails with the gate name and the
#    expected vs actual value instead of a silent pass.
#  * instrumentation overhead: scripts/check_overhead.sh gates the
#    obs_overhead section of the sweep report.
#
# Usage: scripts/bench_check.sh [build-dir] [sweep-report.json] [transient-report.json]
set -euo pipefail

BUILD="${1:-build-release}"
REPORT="${2:-BENCH_sweep.json}"
TREPORT="${3:-BENCH_transient.json}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_sweep bench_transient -j > /dev/null

"$BUILD/bench/bench_sweep" "$REPORT" --check
"$BUILD/bench/bench_transient" "$TREPORT" --check

FAILURES=0

# fail <gate> <file> <expected> <actual>
fail() {
  echo "bench_check: FAIL [$1] in $2" >&2
  echo "  expected: $3" >&2
  echo "  actual:   $4" >&2
  FAILURES=$((FAILURES + 1))
}

# field <file> <key> -> first "key": value in the file, '' when absent.
field() {
  awk -v key="\"$2\"" '$1 == key ":" {
    v = $2
    gsub(/,$/, "", v)
    print v
    exit
  }' "$1"
}

# require_true <gate> <file> <key>
require_true() {
  local v
  v="$(field "$2" "$3")"
  if [ -z "$v" ]; then
    fail "$1" "$2" "\"$3\": true" "field missing"
  elif [ "$v" != "true" ]; then
    fail "$1" "$2" "\"$3\": true" "\"$3\": $v"
  fi
}

# require_section <gate> <file> <key>
require_section() {
  if ! grep -q "\"$3\":" "$2"; then
    fail "$1" "$2" "a \"$3\" section" "section missing"
  fi
}

for f in "$REPORT" "$TREPORT"; do
  if [ ! -f "$f" ]; then
    fail "report-exists" "$f" "file written by the bench" "no such file"
  fi
done

if [ -f "$REPORT" ]; then
  require_true sweep-bit-identical "$REPORT" bit_identical
  require_section sweep-telemetry "$REPORT" telemetry
  require_section sweep-obs-overhead "$REPORT" obs_overhead
  require_section sweep-baseband "$REPORT" baseband_sweep
fi

if [ -f "$TREPORT" ]; then
  require_true transient-bit-identical "$TREPORT" default_bit_identical
  require_true transient-warm-tolerance "$TREPORT" warm_within_tolerance
  require_section transient-telemetry "$TREPORT" telemetry
  require_section transient-probe-sweep "$TREPORT" probe_sweep
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "bench_check: $FAILURES gate(s) failed" >&2
  exit 1
fi

"$(dirname "$0")/check_overhead.sh" "$BUILD" "$REPORT" --no-run

echo "bench_check: OK ($REPORT, $TREPORT)"

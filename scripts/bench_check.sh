#!/usr/bin/env bash
# Builds the benchmark gates in Release and verifies both engines:
#
#  * bench_sweep: every batched frequency-domain path must be
#    bit-identical to the scalar path, and on a machine with >= 4
#    hardware threads the pool sweep must not be slower than the
#    1-thread sweep (--check enforces both; on narrower machines only
#    bit-identity is enforced).
#  * bench_transient: the default (cold) transient probe path must be
#    bit-identical to the seed behavior (single-entry propagator cache),
#    warm-start measurements must agree with cold ones within the probe
#    tolerance, and caching + warm start must beat the seed baseline
#    (verdict field in BENCH_transient.json).
#
# Usage: scripts/bench_check.sh [build-dir] [sweep-report.json] [transient-report.json]
set -euo pipefail

BUILD="${1:-build-release}"
REPORT="${2:-BENCH_sweep.json}"
TREPORT="${3:-BENCH_transient.json}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" --target bench_sweep bench_transient -j > /dev/null

"$BUILD/bench/bench_sweep" "$REPORT" --check
"$BUILD/bench/bench_transient" "$TREPORT" --check
echo "bench_check: OK ($REPORT, $TREPORT)"

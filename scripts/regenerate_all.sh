#!/usr/bin/env bash
# Regenerates every figure/table of the reproduction into results/ as
# both console text and CSV.  Run from the repository root after
# building (cmake -B build -G Ninja && cmake --build build).
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

for bench in "$BUILD"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  case "$name" in
    timing_htm_vs_sim|ablation_rankone)
      # google-benchmark binaries: console + JSON.
      "$bench" --benchmark_out="$OUT/$name.json" \
               --benchmark_out_format=json | tee "$OUT/$name.txt"
      ;;
    *)
      "$bench" "$OUT/$name.csv" | tee "$OUT/$name.txt"
      ;;
  esac
done

echo
echo "wrote $(ls "$OUT" | wc -l) files to $OUT/"

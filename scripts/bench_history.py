#!/usr/bin/env python3
"""Append benchmark reports to a JSONL history and gate regressions.

Usage:
  bench_history.py [--history FILE] [--max-regression FRAC] report.json...

For every report given, the gated metrics (per-bench dotted paths, all
higher-is-better speedups) are extracted and compared against the best
value previously recorded for the same bench+metric in the history file.
A metric that drops below (1 - FRAC) x best-known fails the run (exit 1).
Every run -- passing, failing, or fresh baseline -- appends one record
per report:

  {"bench": ..., "git": ..., "timestamp": ..., "metrics": {...}}

keyed by `git describe` (from the report's .manifest.json sidecar when
present, else the working tree).  A fresh history file is a baseline:
nothing to compare against, exit 0.

Stdlib only; no third-party imports.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys

# Gated metrics per bench, as dotted paths into the report JSON.  All are
# speedups: higher is better, and a >FRAC drop vs the best-known value is
# a regression.
GATED_METRICS = {
    "sweep_engine": [
        "baseband_sweep.grid_speedup_vs_pointwise",
        "closed_loop_multiband.speedup",
    ],
    "transient_engine": [
        "spectral_cold_speedup_vs_seed",
    ],
    "bench_kernels": [
        "eval_plan.plan_speedup_vs_scalar",
    ],
    "bench_noise": [
        "output_psd.grid_speedup_vs_pointwise",
    ],
    "bench_stability": [
        "design_sweep.batched_speedup_vs_scalar",
    ],
    "bench_mc": [
        "mc.ensemble_speedup_vs_scalar",
    ],
}


def dotted_get(obj, path):
    """Walk a dotted path through nested dicts; None when absent."""
    for key in path.split("."):
        if not isinstance(obj, dict) or key not in obj:
            return None
        obj = obj[key]
    return obj if isinstance(obj, (int, float)) else None


def bench_name(report):
    return report.get("bench") or report.get("benchmark")


def git_describe(report_path):
    """git id from the manifest sidecar, else the working tree."""
    manifest_path = report_path + ".manifest.json"
    try:
        with open(manifest_path, encoding="utf-8") as f:
            manifest = json.load(f)
        git = manifest.get("git")
        if isinstance(git, str) and git:
            return git
    except (OSError, ValueError):
        pass
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(report_path)) or ".",
            check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def load_history(path):
    """Best-known value per (bench, metric) over all prior records."""
    best = {}
    if not os.path.exists(path):
        return best
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                print(
                    f"bench_history: warning: {path}:{lineno}: "
                    "unparseable record skipped",
                    file=sys.stderr,
                )
                continue
            bench = rec.get("bench")
            metrics = rec.get("metrics")
            if not isinstance(bench, str) or not isinstance(metrics, dict):
                continue
            for metric, value in metrics.items():
                if not isinstance(value, (int, float)):
                    continue
                key = (bench, metric)
                if key not in best or value > best[key]:
                    best[key] = value
    return best


def main(argv):
    ap = argparse.ArgumentParser(
        description="Append bench reports to a JSONL history and fail on "
        "regressions vs the best-known baseline."
    )
    ap.add_argument(
        "--history",
        default=os.path.join("bench", "history.jsonl"),
        help="history file (JSONL, appended; default bench/history.jsonl)",
    )
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail when a gated metric drops more than this fraction "
        "below the best-known value (default 0.10)",
    )
    ap.add_argument("reports", nargs="+", help="BENCH_*.json report files")
    args = ap.parse_args(argv)

    best = load_history(args.history)
    timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )

    failures = []
    records = []
    for report_path in args.reports:
        try:
            with open(report_path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            print(f"bench_history: error: {report_path}: {e}",
                  file=sys.stderr)
            return 2

        bench = bench_name(report)
        if not bench:
            print(
                f"bench_history: error: {report_path}: no 'bench' or "
                "'benchmark' key",
                file=sys.stderr,
            )
            return 2

        metrics = {}
        for path in GATED_METRICS.get(bench, []):
            value = dotted_get(report, path)
            if value is None:
                print(
                    f"bench_history: warning: {report_path}: gated metric "
                    f"'{path}' missing; not recorded",
                    file=sys.stderr,
                )
                continue
            metrics[path] = value
            key = (bench, path)
            if key in best:
                floor = (1.0 - args.max_regression) * best[key]
                verdict = "REGRESSION" if value < floor else "ok"
                print(
                    f"{bench}: {path} = {value:.4g} "
                    f"(best {best[key]:.4g}, floor {floor:.4g}) {verdict}"
                )
                if value < floor:
                    failures.append(
                        f"{bench}: {path} = {value:.4g} is more than "
                        f"{100.0 * args.max_regression:.0f}% below the "
                        f"best-known {best[key]:.4g}"
                    )
            else:
                print(f"{bench}: {path} = {value:.4g} (fresh baseline)")

        records.append(
            {
                "bench": bench,
                "git": git_describe(report_path),
                "timestamp": timestamp,
                "metrics": metrics,
            }
        )

    history_dir = os.path.dirname(args.history)
    if history_dir:
        os.makedirs(history_dir, exist_ok=True)
    with open(args.history, "a", encoding="utf-8") as f:
        for rec in records:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
    print(
        f"bench_history: appended {len(records)} record(s) to {args.history}"
    )

    if failures:
        for failure in failures:
            print(f"bench_history: FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

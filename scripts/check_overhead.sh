#!/usr/bin/env bash
# Gates the cost of the instrumentation layer: bench_sweep and
# bench_noise each measure a reference workload (the exact
# baseband_transfer_grid sweep; the output_psd_grid surface) with obs
# disabled and enabled and record both in their report's "obs_overhead"
# section; this script fails if either measured overhead exceeds the
# budget.
#
# Pass criteria per report (either suffices):
#  * fraction  < 1%   -- relative overhead of the instrumented build
#  * delta_s < 0.0002 -- absolute overhead too small to resolve against
#                        scheduler noise on a sub-millisecond workload
#
# Usage: scripts/check_overhead.sh [build-dir] [sweep-report.json] \
#                                  [noise-report.json] [--no-run]
#   --no-run: gate existing reports instead of building and running the
#             benches (used by bench_check.sh, which just ran them).
set -euo pipefail

BUILD="build-release"
SWEEP_REPORT="BENCH_sweep.json"
NOISE_REPORT="BENCH_noise.json"
RUN=1
POS=()
for arg in "$@"; do
  if [ "$arg" = "--no-run" ]; then
    RUN=0
  else
    POS+=("$arg")
  fi
done
if [ "${#POS[@]}" -ge 1 ]; then BUILD="${POS[0]}"; fi
if [ "${#POS[@]}" -ge 2 ]; then SWEEP_REPORT="${POS[1]}"; fi
if [ "${#POS[@]}" -ge 3 ]; then NOISE_REPORT="${POS[2]}"; fi

if [ "$RUN" = 1 ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build "$BUILD" --target bench_sweep bench_noise -j > /dev/null
  "$BUILD/bench/bench_sweep" "$SWEEP_REPORT" > /dev/null
  "$BUILD/bench/bench_noise" "$NOISE_REPORT" > /dev/null
fi

MAX_FRACTION=0.01
MAX_DELTA=0.0002
FAIL=0

# gate <label> <report>: check the obs_overhead section of one report.
gate() {
  local label="$1" report="$2"
  if [ ! -f "$report" ]; then
    echo "check_overhead: FAIL: $label report '$report' does not exist" >&2
    FAIL=1
    return
  fi

  # Extract "key": value numbers from the obs_overhead object.
  local fraction delta disabled enabled workload
  extract() {
    awk -v key="\"$1\"" '
      /"obs_overhead"/ { in_obj = 1 }
      in_obj && $1 == key ":" { gsub(/[",]/, "", $2); print $2; exit }
      in_obj && /^  \}/ { exit }
    ' "$report"
  }
  fraction="$(extract fraction)"
  delta="$(extract delta_s)"
  disabled="$(extract disabled_s)"
  enabled="$(extract enabled_s)"
  workload="$(extract workload)"

  if [ -z "$fraction" ] || [ -z "$delta" ]; then
    echo "check_overhead: FAIL: $report has no obs_overhead.fraction /" \
         "obs_overhead.delta_s (is $label up to date?)" >&2
    FAIL=1
    return
  fi

  # A negative measurement means the instrumented run beat the plain one
  # -- pure scheduler noise.  Clamp to max(0, x) for the comparison so a
  # large negative value cannot trivially satisfy the budget, but keep
  # echoing the raw numbers so the noise magnitude stays on record.
  local clamped_fraction clamped_delta pass
  clamped_fraction="$(awk -v f="$fraction" \
                          'BEGIN { print (f < 0) ? 0 : f }')"
  clamped_delta="$(awk -v d="$delta" 'BEGIN { print (d < 0) ? 0 : d }')"
  pass="$(awk -v f="$clamped_fraction" -v d="$clamped_delta" \
              -v mf="$MAX_FRACTION" -v md="$MAX_DELTA" \
              'BEGIN { print (f < mf || d < md) ? 1 : 0 }')"

  if [ "$pass" != 1 ]; then
    {
      echo "check_overhead: FAIL: instrumentation overhead over budget"
      echo "  workload:  ${workload} (${label})"
      echo "  disabled:  ${disabled}s   enabled: ${enabled}s"
      echo "  delta:     ${delta}s      (gated as ${clamped_delta}s," \
           "budget < ${MAX_DELTA}s)"
      echo "  fraction:  ${fraction}    (gated as ${clamped_fraction}," \
           "budget < ${MAX_FRACTION})"
    } >&2
    FAIL=1
    return
  fi

  echo "check_overhead: OK $label (raw delta ${delta}s, raw fraction" \
       "${fraction}; gated as ${clamped_delta}s / ${clamped_fraction}" \
       "vs budget ${MAX_FRACTION} rel / ${MAX_DELTA}s abs)"
}

gate bench_sweep "$SWEEP_REPORT"
gate bench_noise "$NOISE_REPORT"

exit "$FAIL"

#!/usr/bin/env bash
# Gates the cost of the instrumentation layer: bench_sweep measures its
# reference workload (the exact baseband_transfer_grid sweep) with obs
# disabled and enabled and records both in the report's "obs_overhead"
# section; this script fails if the measured overhead exceeds the
# budget.
#
# Pass criteria (either suffices):
#  * fraction  < 1%   -- relative overhead of the instrumented build
#  * delta_s < 0.0002 -- absolute overhead too small to resolve against
#                        scheduler noise on a sub-millisecond workload
#
# Usage: scripts/check_overhead.sh [build-dir] [sweep-report.json] [--no-run]
#   --no-run: gate an existing report instead of building and running
#             bench_sweep (used by bench_check.sh, which just ran it).
set -euo pipefail

BUILD="build-release"
REPORT="BENCH_sweep.json"
RUN=1
POS=()
for arg in "$@"; do
  if [ "$arg" = "--no-run" ]; then
    RUN=0
  else
    POS+=("$arg")
  fi
done
if [ "${#POS[@]}" -ge 1 ]; then BUILD="${POS[0]}"; fi
if [ "${#POS[@]}" -ge 2 ]; then REPORT="${POS[1]}"; fi

if [ "$RUN" = 1 ]; then
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
  cmake --build "$BUILD" --target bench_sweep -j > /dev/null
  "$BUILD/bench/bench_sweep" "$REPORT" > /dev/null
fi

if [ ! -f "$REPORT" ]; then
  echo "check_overhead: FAIL: report '$REPORT' does not exist" >&2
  exit 1
fi

# Extract "key": value numbers from the obs_overhead object.
extract() {
  awk -v key="\"$1\"" '
    /"obs_overhead"/ { in_obj = 1 }
    in_obj && $1 == key ":" { gsub(/[",]/, "", $2); print $2; exit }
    in_obj && /^  \}/ { exit }
  ' "$REPORT"
}

FRACTION="$(extract fraction)"
DELTA="$(extract delta_s)"
DISABLED="$(extract disabled_s)"
ENABLED="$(extract enabled_s)"

if [ -z "$FRACTION" ] || [ -z "$DELTA" ]; then
  echo "check_overhead: FAIL: $REPORT has no obs_overhead.fraction /" \
       "obs_overhead.delta_s (is bench_sweep up to date?)" >&2
  exit 1
fi

MAX_FRACTION=0.01
MAX_DELTA=0.0002
PASS="$(awk -v f="$FRACTION" -v d="$DELTA" \
            -v mf="$MAX_FRACTION" -v md="$MAX_DELTA" \
            'BEGIN { print (f < mf || d < md) ? 1 : 0 }')"

if [ "$PASS" != 1 ]; then
  {
    echo "check_overhead: FAIL: instrumentation overhead over budget"
    echo "  workload:  exact baseband_transfer_grid (bench_sweep)"
    echo "  disabled:  ${DISABLED}s   enabled: ${ENABLED}s"
    echo "  delta:     ${DELTA}s      (budget < ${MAX_DELTA}s)"
    echo "  fraction:  ${FRACTION}    (budget < ${MAX_FRACTION})"
  } >&2
  exit 1
fi

echo "check_overhead: OK (delta ${DELTA}s, fraction ${FRACTION} vs" \
     "budget ${MAX_FRACTION} rel / ${MAX_DELTA}s abs)"
